"""Static CFG analysis: profile-free conflict estimation + assembly lint.

The paper's §5 branch allocation is *compiler-controlled* — it presumes the
compiler can decide, before the program ever runs, which static branches
will interleave.  This package supplies that static view over assembled
:class:`~repro.isa.program.Program` objects:

* :mod:`.cfg` — basic blocks and control-flow edges (with computed-jump
  conservatism via assembler-recorded jump tables);
* :mod:`.dominators` — immediate dominators (Cooper–Harvey–Kennedy);
* :mod:`.loops` — natural loops and the loop nesting forest;
* :mod:`.dataflow` — a generic worklist solver (forward/backward, any
  lattice) with shipped instances: must-defined registers, liveness,
  reaching definitions, constant and interval propagation;
* :mod:`.superblocks` — single-entry straight-line region formation with
  side-exit metadata and a structural verifier;
* :mod:`.heuristics` — Ball–Larus static branch-direction predictions
  and counted-loop trip estimates;
* :mod:`.estimator` — a predicted
  :class:`~repro.analysis.conflict_graph.ConflictGraph` from shared-loop
  structure weighted by trip products, letting
  :class:`~repro.allocation.allocator.BranchAllocator` run with **no
  profiling or simulation step**;
* :mod:`.lint` — structured diagnostics (unreachable code, branch-to-data,
  use-before-def, dead stores, loop-invariant branches, jump-table
  conflicts) built on the dataflow instances.
"""

from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dataflow import (
    ConstantPropagation,
    DataflowProblem,
    DataflowResult,
    Direction,
    IntervalPropagation,
    LiveRegisters,
    MustDefinedRegisters,
    ReachingDefinitions,
    solve,
)
from .dominators import VIRTUAL_ROOT, DominatorTree, compute_dominators
from .estimator import (
    DEFAULT_LOOP_ITERS,
    StaticConflictEstimate,
    StaticConflictEstimator,
    estimate_conflict_graph,
)
from .heuristics import (
    BranchPrediction,
    LoopTripEstimate,
    estimate_edge_frequencies,
    estimate_loop_trips,
    predict_branches,
)
from .lint import Diagnostic, LintReport, lint_program, lint_source
from .loops import LoopForest, NaturalLoop, find_loops
from .superblocks import (
    Superblock,
    SuperblockCover,
    SuperblockInvariantError,
    form_superblocks,
    verify_cover,
)

__all__ = [
    "BasicBlock",
    "BranchPrediction",
    "ConstantPropagation",
    "ControlFlowGraph",
    "DEFAULT_LOOP_ITERS",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "Direction",
    "DominatorTree",
    "IntervalPropagation",
    "LintReport",
    "LiveRegisters",
    "LoopForest",
    "LoopTripEstimate",
    "MustDefinedRegisters",
    "NaturalLoop",
    "ReachingDefinitions",
    "StaticConflictEstimate",
    "StaticConflictEstimator",
    "Superblock",
    "SuperblockCover",
    "SuperblockInvariantError",
    "VIRTUAL_ROOT",
    "build_cfg",
    "compute_dominators",
    "estimate_conflict_graph",
    "estimate_edge_frequencies",
    "estimate_loop_trips",
    "find_loops",
    "form_superblocks",
    "lint_program",
    "lint_source",
    "predict_branches",
    "solve",
    "verify_cover",
]
