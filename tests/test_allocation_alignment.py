"""Branch alignment transform tests."""

import pytest

from repro.allocation.alignment import align_workload
from repro.predictors.simulator import simulate_predictor
from repro.predictors.twolevel import PAgPredictor
from repro.profiling.interleave import profile_trace
from repro.trace.capture import TraceCapture
from repro.workloads.build import (
    InputSpec,
    KernelCall,
    PhaseSpec,
    WorkloadSpec,
    build_workload,
    run_workload,
)

THRESHOLD = 5


@pytest.fixture(scope="module")
def spec():
    return WorkloadSpec(
        name="align-test",
        phases=(
            PhaseSpec(
                (
                    KernelCall("rle", 0, (60,)),
                    KernelCall("crc", 0, (25,)),
                    KernelCall("fsm", 0, (40,)),
                    KernelCall("sieve", 0, (120,)),
                ),
                iterations=25,
            ),
            PhaseSpec(
                (
                    KernelCall("rle", 1, (40,)),
                    KernelCall("crc", 1, (20,)),
                ),
                iterations=25,
            ),
        ),
        rounds=2,
        input=InputSpec(kind="text", size=1024, seed=9),
        fuel=2_000_000,
    )


@pytest.fixture(scope="module")
def profiled(spec):
    built = build_workload(spec)
    capture = TraceCapture()
    run_workload(built, branch_hook=capture)
    trace = capture.finish(spec.name)
    return built, trace, profile_trace(trace)


def test_kernel_extents_cover_all_instances(profiled):
    built, _, _ = profiled
    extents = built.kernel_extents()
    assert set(extents) == {
        ("rle", 0), ("rle", 1), ("crc", 0), ("crc", 1),
        ("fsm", 0), ("sieve", 0),
    }
    # extents are disjoint and ordered
    spans = sorted(extents.values())
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert s1 < e1 <= s2
    # every instance's entry symbol sits at its extent start
    for (kernel, instance), (start, _) in extents.items():
        suffix = "" if instance == 0 else f"_{instance}"
        assert built.program.symbols[f"{kernel}{suffix}"] == start


def test_explicit_pads_control_layout(spec):
    packed = build_workload(spec, explicit_pads={})
    padded = build_workload(spec, explicit_pads={("rle", 0): 100})
    assert len(padded.program) == len(packed.program) + 100


def test_alignment_reduces_or_matches_conflict_cost(spec, profiled):
    _, _, profile = profiled
    result = align_workload(
        spec, profile, bht_size=64, threshold=THRESHOLD
    )
    assert result.aligned_cost <= result.original_cost
    assert result.aligned_cost >= result.intra_unit_cost


def test_aligned_program_behaves_identically(spec, profiled):
    built, _, profile = profiled
    result = align_workload(
        spec, profile, bht_size=64, threshold=THRESHOLD
    )
    original_output = run_workload(built).output
    aligned_output = run_workload(result.aligned).output
    assert original_output == aligned_output


def test_alignment_helps_conventional_predictor(spec, profiled):
    """With a deliberately small BHT the aligned layout mispredicts no
    more than the scattered one under identical conventional hardware."""
    _, trace, profile = profiled
    result = align_workload(
        spec, profile, bht_size=64, threshold=THRESHOLD
    )
    capture = TraceCapture()
    run_workload(result.aligned, branch_hook=capture)
    aligned_trace = capture.finish("aligned")

    def mispredict(t):
        return simulate_predictor(
            PAgPredictor.conventional(64, 10), t, track_per_branch=False
        ).misprediction_rate

    assert mispredict(aligned_trace) <= mispredict(trace) + 0.01


def test_alignment_validation(spec, profiled):
    _, _, profile = profiled
    with pytest.raises(ValueError):
        align_workload(spec, profile, bht_size=0)
    with pytest.raises(ValueError):
        align_workload(spec, profile, residue_stride=0)


def test_pads_place_units_at_chosen_residues(spec, profiled):
    _, _, profile = profiled
    bht_size = 64
    result = align_workload(
        spec, profile, bht_size=bht_size, threshold=THRESHOLD
    )
    extents = result.aligned.kernel_extents()
    # at least one unit needed a nonzero pad for its residue
    assert any(pad > 0 for pad in result.pads.values())
    # recompute the aligned cost from the actual program layout: it must
    # match the transform's prediction
    from repro.analysis.conflict_graph import build_conflict_graph
    from repro.allocation.conflict_cost import conventional_cost

    # relocate profile pcs onto the aligned layout via extents
    graph = build_conflict_graph(profile, threshold=THRESHOLD)
    capture = TraceCapture()
    run_workload(result.aligned, branch_hook=capture)
    aligned_profile = profile_trace(capture.finish("aligned"))
    aligned_graph = build_conflict_graph(
        aligned_profile, threshold=THRESHOLD
    )
    actual = conventional_cost(aligned_graph, bht_size)
    assert actual == result.aligned_cost
