"""Advisory in-flight claims on the artifact store.

Two engines (or two daemon workers) that miss on the same digest must
not both simulate it.  ``try_claim`` arbitrates with ``O_CREAT|O_EXCL``
— the one filesystem primitive that is atomic across processes — so
under *any* interleaving exactly one writer wins; the loser
``wait_for_writer``\\ s for the winner's atomic publish.  Claims are
advisory: ``put`` stays atomic and idempotent, so a broken claim can
duplicate work but never corrupt results.

The two-writer race is property-tested with hypothesis across thread
counts and start orderings; the stale-claim paths (dead holder pid,
ancient mtime, unreadable content) are covered deterministically.
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.engine import ArtifactStore, JobSpec, _execute_job

SCALE = 0.05


def make_store(root) -> ArtifactStore:
    return ArtifactStore(Path(root) / "cache")


SPEC = JobSpec(name="plot", scale=SCALE)
DIGEST = "deadbeefcafef00d" * 4


# -- claim basics -----------------------------------------------------------


def test_claim_is_exclusive_until_released(tmp_path):
    store = make_store(tmp_path)
    assert store.try_claim(SPEC, DIGEST) is True
    assert store.try_claim(SPEC, DIGEST) is False
    assert store.claim_path(SPEC, DIGEST).exists()
    store.release_claim(SPEC, DIGEST)
    assert not store.claim_path(SPEC, DIGEST).exists()
    assert store.try_claim(SPEC, DIGEST) is True


def test_claim_file_records_holder_pid(tmp_path):
    store = make_store(tmp_path)
    assert store.try_claim(SPEC, DIGEST)
    payload = json.loads(store.claim_path(SPEC, DIGEST).read_bytes())
    assert payload["pid"] == os.getpid()
    assert payload["ts"] > 0


def test_release_claim_tolerates_missing_file(tmp_path):
    store = make_store(tmp_path)
    store.release_claim(SPEC, DIGEST)  # nothing claimed: must not raise


def test_distinct_digests_do_not_contend(tmp_path):
    store = make_store(tmp_path)
    other = "0123456789abcdef" * 4
    assert store.try_claim(SPEC, DIGEST)
    assert store.try_claim(SPEC, other)


# -- the two-writer race (property) -----------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    writers=st.integers(min_value=2, max_value=8),
    digest=st.text(alphabet="0123456789abcdef", min_size=16, max_size=64),
)
def test_exactly_one_writer_wins_the_claim(writers, digest):
    """N threads released simultaneously onto one digest: exactly one
    ``try_claim`` returns True, regardless of count or scheduling."""
    root = tempfile.mkdtemp(prefix="repro-claims-")
    store = make_store(root)
    barrier = threading.Barrier(writers)
    wins = []
    lock = threading.Lock()

    def contend():
        barrier.wait()
        won = store.try_claim(SPEC, digest)
        with lock:
            wins.append(won)

    threads = [threading.Thread(target=contend) for _ in range(writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert wins.count(True) == 1
    assert wins.count(False) == writers - 1


# -- stale-claim breaking ---------------------------------------------------


def _dead_pid() -> int:
    """A pid that provably belonged to a now-reaped process of ours."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_dead_holders_claim_is_broken_and_retaken(tmp_path):
    store = make_store(tmp_path)
    store.root.mkdir(parents=True)
    store.claim_path(SPEC, DIGEST).write_text(
        json.dumps({"pid": _dead_pid(), "ts": time.time()})
    )
    # the pid probe sees the holder is gone; the claim is broken and
    # re-taken in the same call
    assert store.try_claim(SPEC, DIGEST) is True
    payload = json.loads(store.claim_path(SPEC, DIGEST).read_bytes())
    assert payload["pid"] == os.getpid()


def test_live_holders_claim_is_respected(tmp_path):
    store = make_store(tmp_path)
    store.root.mkdir(parents=True)
    store.claim_path(SPEC, DIGEST).write_text(
        json.dumps({"pid": os.getpid(), "ts": time.time()})
    )
    assert store.try_claim(SPEC, DIGEST) is False


def test_live_holders_old_claim_is_never_broken_on_age(tmp_path):
    """Regression: a checkpoint-resumed long job legitimately holds one
    claim far past CLAIM_STALE_SECONDS.  The pid probe is authoritative
    — a provably alive holder keeps its claim no matter the mtime."""
    store = make_store(tmp_path)
    store.root.mkdir(parents=True)
    path = store.claim_path(SPEC, DIGEST)
    path.write_text(json.dumps({"pid": os.getpid(), "ts": time.time()}))
    ancient = time.time() - (store.CLAIM_STALE_SECONDS * 100)
    os.utime(path, (ancient, ancient))
    assert store.try_claim(SPEC, DIGEST) is False
    # and a waiter keeps waiting (times out) instead of declaring it gone
    assert store.wait_for_writer(SPEC, DIGEST, timeout=0.2) is False
    assert path.exists()


def test_progress_refreshes_claim_mtime(tmp_path, monkeypatch):
    """The slice-progress path touches the claim so observers see a
    recent mtime while a long simulation is live."""
    from repro.eval import engine as engine_mod

    monkeypatch.setattr(
        engine_mod.ArtifactStore, "CLAIM_REFRESH_SECONDS", 0.0
    )
    cache = tmp_path / "cache"
    spec = JobSpec(name="plot", scale=SCALE)
    payload = (spec, str(cache), False, 500)
    ages = []

    def probe(name, events):
        store = ArtifactStore(cache)
        for claim in store.root.rglob("*.claim"):
            ages.append(time.time() - claim.stat().st_mtime)

    result = _execute_job(payload, progress=probe)
    assert result.source == "simulated"
    assert ages, "progress callback never saw a live claim"
    assert min(ages) < 5.0


def test_unreadable_claim_falls_back_to_mtime_backstop(tmp_path):
    store = make_store(tmp_path)
    store.root.mkdir(parents=True)
    path = store.claim_path(SPEC, DIGEST)
    path.write_text("not json at all")
    # fresh garbage: assumed mid-write, treated as live
    assert store.try_claim(SPEC, DIGEST) is False
    # ancient garbage: the mtime backstop breaks it
    old = time.time() - (store.CLAIM_STALE_SECONDS + 10)
    os.utime(path, (old, old))
    assert store.try_claim(SPEC, DIGEST) is True


# -- waiting on another writer ----------------------------------------------


def test_wait_for_writer_returns_false_when_claim_released_bare(tmp_path):
    """Holder releases without publishing (it failed): the waiter must
    come back quickly with False so it can simulate itself."""
    store = make_store(tmp_path)
    assert store.try_claim(SPEC, DIGEST)
    store.release_claim(SPEC, DIGEST)
    started = time.monotonic()
    assert store.wait_for_writer(SPEC, DIGEST, timeout=5.0) is False
    assert time.monotonic() - started < 1.0
    assert store.claim_waits == 0


def test_wait_for_writer_times_out_on_a_wedged_live_holder(tmp_path):
    store = make_store(tmp_path)
    store.root.mkdir(parents=True)
    store.claim_path(SPEC, DIGEST).write_text(
        json.dumps({"pid": os.getpid(), "ts": time.time()})
    )
    started = time.monotonic()
    assert store.wait_for_writer(SPEC, DIGEST, timeout=0.2) is False
    elapsed = time.monotonic() - started
    assert 0.15 <= elapsed < 2.0
    assert store.claim_waits == 0


def test_wait_for_writer_treats_dead_holder_as_gone(tmp_path):
    store = make_store(tmp_path)
    store.root.mkdir(parents=True)
    store.claim_path(SPEC, DIGEST).write_text(
        json.dumps({"pid": _dead_pid(), "ts": time.time()})
    )
    started = time.monotonic()
    assert store.wait_for_writer(SPEC, DIGEST, timeout=5.0) is False
    assert time.monotonic() - started < 1.0


# -- the full two-writer path through _execute_job --------------------------


@pytest.mark.faults
def test_racing_engines_simulate_once_and_share_the_publish(tmp_path):
    """Two concurrent ``_execute_job`` calls on one cold cache entry:
    one claims and simulates, the other waits and loads the published
    artifacts — sources are {"simulated", "store"}, never twice
    "simulated"."""
    cache = tmp_path / "cache"
    spec = JobSpec(name="plot", scale=SCALE)
    payload = (spec, str(cache), False, None)
    barrier = threading.Barrier(2)
    results = [None, None]

    def run(slot):
        barrier.wait()
        results[slot] = _execute_job(payload)

    threads = [
        threading.Thread(target=run, args=(slot,)) for slot in (0, 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    sources = sorted(r.source for r in results)
    assert sources == ["simulated", "store"]
    assert results[0].digest == results[1].digest
    # both claims were released: a third run is a plain store hit
    store = ArtifactStore(cache)
    assert not store.claim_path(spec, results[0].digest).exists()
    follow_up = _execute_job(payload)
    assert follow_up.source == "store"
