"""The analysis service: wire protocol, quotas, admission, daemon.

Unit layers (wire framing, token buckets, the admission queue, the
service journal's orphan accounting, predictor wire specs, and the
daemon's synchronous submit/schedule paths driven by a fake clock) are
fully deterministic — no sockets, no sleeps.  Two integration tests
then boot the real asyncio daemon in-process on a unix socket: one
end-to-end pass (submit + predictors, in-flight dedupe, store hit
across a daemon restart) and one deadline cancellation through the
worker-timeout path.  Daemon crash/SIGKILL recovery lives in
``test_service_faults.py`` with the rest of the injection suite.
"""

import asyncio
import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.errors import QuotaExceeded, ReproError, ServiceOverloaded
from repro.eval import interrupt
from repro.eval.engine import ArtifactStore, JobSpec
from repro.schema import SCHEMA_VERSION
from repro.service import (
    AdmissionController,
    AnalysisService,
    LoadgenConfig,
    MAX_FRAME_BYTES,
    QuotaManager,
    ServiceConfig,
    ServiceJob,
    ServiceJournal,
    TokenBucket,
    WireError,
    build_predictor,
    decode_frame,
    encode_frame,
    read_frame,
    rejection,
    response,
    summarize,
)
from repro.service.loadgen import RequestOutcome, _percentile
from repro.predictors import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    BTFNTPredictor,
    GSharePredictor,
)

#: Small enough to keep each daemon-side simulation around a second.
SCALE = 0.05


# -- wire protocol ----------------------------------------------------------


def test_frame_round_trip():
    frame = {"op": "submit", "benchmark": "plot", "scale": 0.5}
    assert decode_frame(encode_frame(frame)) == frame


def test_encode_frame_is_one_sorted_line():
    raw = encode_frame({"b": 1, "a": 2})
    assert raw == b'{"a": 2, "b": 1}\n'


def test_decode_frame_rejects_oversize():
    line = b'{"pad": "' + b"x" * MAX_FRAME_BYTES + b'"}'
    with pytest.raises(WireError, match="exceeds"):
        decode_frame(line)


def test_decode_frame_rejects_garbage_and_non_objects():
    with pytest.raises(WireError, match="unparsable"):
        decode_frame(b"{oops\n")
    with pytest.raises(WireError, match="JSON object"):
        decode_frame(b"[1, 2]\n")


def test_read_frame_skips_blank_lines_and_signals_eof():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"\n  \n" + encode_frame({"op": "ping"}))
        reader.feed_eof()
        first = await read_frame(reader)
        second = await read_frame(reader)
        return first, second

    first, second = asyncio.run(scenario())
    assert first == {"op": "ping"}
    assert second is None


def test_response_stamps_schema_version_and_id():
    frame = response("accepted", "job-1", digest="abcd")
    assert frame == {
        "type": "accepted",
        "schema_version": SCHEMA_VERSION,
        "id": "job-1",
        "digest": "abcd",
    }


def test_rejection_carries_typed_error():
    frame = rejection(
        ServiceOverloaded("full", queue_depth=4, queue_limit=4), "job-9"
    )
    assert frame["type"] == "rejected"
    assert frame["id"] == "job-9"
    assert frame["error"]["code"] == "service_overloaded"
    assert frame["error"]["queue_limit"] == 4
    # the frame must survive the NDJSON encoding it is destined for
    assert decode_frame(encode_frame(frame)) == frame


# -- token buckets and quotas ----------------------------------------------


def test_token_bucket_burst_then_exact_wait():
    bucket = TokenBucket(rate=2.0, burst=3.0, tokens=3.0, updated=0.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    # empty: the promised wait is exactly when the next token lands
    wait = bucket.try_take(0.0)
    assert wait == pytest.approx(0.5)
    assert bucket.try_take(wait) == 0.0


def test_token_bucket_refill_caps_at_burst():
    bucket = TokenBucket(rate=10.0, burst=2.0, tokens=0.0, updated=0.0)
    assert bucket.try_take(100.0) == 0.0  # refilled long ago, capped at 2
    assert bucket.try_take(100.0) == 0.0
    assert bucket.try_take(100.0) > 0.0


def test_token_bucket_zero_rate_never_refills():
    bucket = TokenBucket(rate=0.0, burst=1.0, tokens=0.0, updated=0.0)
    assert bucket.try_take(10.0) == float("inf")


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_quota_manager_rejects_with_retry_after():
    clock = FakeClock()
    quotas = QuotaManager(rate=1.0, burst=1.0, clock=clock)
    quotas.admit("t0")
    with pytest.raises(QuotaExceeded) as info:
        quotas.admit("t0")
    assert info.value.context["tenant"] == "t0"
    assert info.value.context["retry_after_s"] == pytest.approx(1.0)
    clock.advance(1.0)
    quotas.admit("t0")  # the promised retry_after was honest


def test_quota_manager_buckets_are_per_tenant():
    clock = FakeClock()
    quotas = QuotaManager(rate=1.0, burst=1.0, clock=clock)
    quotas.admit("t0")
    quotas.admit("t1")  # t1's bucket is untouched by t0's spend
    with pytest.raises(QuotaExceeded):
        quotas.admit("t0")


def test_quota_manager_zero_rate_is_unlimited():
    quotas = QuotaManager(rate=0.0, clock=FakeClock())
    for _ in range(100):
        quotas.admit("t0")
    assert quotas.usage_for("t0").admitted == 100


def test_quota_manager_fairness_snapshot():
    clock = FakeClock()
    quotas = QuotaManager(rate=1.0, burst=1.0, clock=clock)
    quotas.admit("t0")
    with pytest.raises(QuotaExceeded):
        quotas.admit("t0")
    quotas.account("t0", completed=1, busy_seconds=2.5)
    snap = quotas.snapshot()
    assert snap["t0"] == {
        "submitted": 2,
        "admitted": 1,
        "rejected": 1,
        "completed": 1,
        "failed": 0,
        "busy_seconds": 2.5,
    }
    payload = json.loads(json.dumps(snap))  # stats frames are NDJSON
    assert payload == snap


# -- admission control -------------------------------------------------------


def test_admission_requires_positive_limit():
    with pytest.raises(ValueError):
        AdmissionController(0)


def test_admission_sheds_at_capacity_with_typed_context():
    admission = AdmissionController(2)
    admission.admit("a")
    admission.admit("b")
    with pytest.raises(ServiceOverloaded) as info:
        admission.admit("c")
    assert info.value.context["queue_depth"] == 2
    assert info.value.context["queue_limit"] == 2
    assert admission.shed == 1
    assert admission.admitted == 2


def test_admission_draining_sheds_everything():
    admission = AdmissionController(8)
    admission.draining = True
    with pytest.raises(ServiceOverloaded) as info:
        admission.admit("a")
    assert info.value.context["draining"] is True
    assert admission.depth() == 0


def test_admission_requeue_bypasses_cap_and_jumps_the_line():
    admission = AdmissionController(1)
    admission.admit("a")
    admission.requeue("retry")  # recovery path must never be shed
    assert admission.depth() == 2
    assert admission.pop() == "retry"
    assert admission.pop() == "a"
    assert admission.pop() is None


def test_admission_snapshot_shape():
    admission = AdmissionController(4)
    admission.admit("a")
    assert admission.snapshot() == {
        "queue_depth": 1,
        "queue_limit": 4,
        "admitted": 1,
        "shed": 0,
        "draining": False,
    }


# -- predictor wire specs ----------------------------------------------------


def test_build_predictor_specs():
    assert isinstance(build_predictor("bimodal"), BimodalPredictor)
    assert len(build_predictor("bimodal:512").counters.table) == 512
    assert build_predictor("gshare:10").history_bits == 10
    assert isinstance(build_predictor("gshare"), GSharePredictor)
    assert isinstance(
        build_predictor("always_taken"), AlwaysTakenPredictor
    )
    assert isinstance(
        build_predictor("always_not_taken"), AlwaysNotTakenPredictor
    )
    assert isinstance(build_predictor("BTFNT"), BTFNTPredictor)


@pytest.mark.parametrize(
    "spec",
    ["", "perceptron", "bimodal:tiny", "always_taken:1", "gshare:-3"],
)
def test_build_predictor_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        build_predictor(spec)


# -- service journal: orphan accounting --------------------------------------


def make_job(job_id, benchmark="plot", digest="d" * 16, **kwargs):
    spec = JobSpec(name=benchmark, scale=SCALE)
    return ServiceJob(
        id=job_id,
        tenant=kwargs.pop("tenant", "t0"),
        spec=spec,
        digest=digest,
        stem=f"{spec.tag()}-{digest[:16]}",
        **kwargs,
    )


def test_journal_orphans_are_submitted_without_done(tmp_path):
    journal = ServiceJournal(tmp_path)
    journal.record_submitted(make_job("job-a"))
    journal.record_submitted(make_job("job-b"))
    journal.record_done("job-a", "completed", digest="d" * 16)
    orphans = journal.orphans()
    assert [record["job"] for record in orphans] == ["job-b"]
    assert orphans[0]["benchmark"] == "plot"
    assert orphans[0]["scale"] == SCALE


def test_journal_all_terminal_states_clear_orphans(tmp_path):
    journal = ServiceJournal(tmp_path)
    for job_id, status in (
        ("job-a", "completed"),
        ("job-b", "failed"),
        ("job-c", "cancelled"),
    ):
        journal.record_submitted(make_job(job_id))
        journal.record_done(job_id, status)
    assert journal.orphans() == []


def test_journal_interrupted_is_not_terminal(tmp_path):
    # an interrupted job must STAY an orphan: that is the record the
    # restarted daemon's recovery pass resumes from
    journal = ServiceJournal(tmp_path)
    journal.record_submitted(make_job("job-a"))
    journal.record_done("job-a", "interrupted")
    assert [r["job"] for r in journal.orphans()] == ["job-a"]


def test_journal_orphans_preserve_submission_order(tmp_path):
    journal = ServiceJournal(tmp_path)
    for index in range(5):
        journal.record_submitted(make_job(f"job-{index}"))
    journal.record_done("job-2", "completed")
    assert [r["job"] for r in journal.orphans()] == [
        "job-0", "job-1", "job-3", "job-4",
    ]


def test_journal_record_includes_resume_parameters(tmp_path):
    journal = ServiceJournal(tmp_path)
    job = make_job("job-a", predictors=("gshare:10",))
    journal.record_submitted(job)
    (record,) = journal.records()
    for key in ("benchmark", "scale", "trace_limit", "backend",
                "digest", "predictors", "tenant"):
        assert key in record
    assert record["predictors"] == ["gshare:10"]


# -- the daemon's synchronous paths (fake clock, no sockets) -----------------


def make_service(tmp_path, **overrides):
    clock = overrides.pop("clock", FakeClock())
    config = ServiceConfig(
        socket_path=str(tmp_path / "svc.sock"),
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )
    return AnalysisService(config, clock=clock), clock


def drain_frames(conn):
    frames = []
    while True:
        try:
            frames.append(conn.queue.get_nowait())
        except asyncio.QueueEmpty:
            return frames


def submit_frame(job_id, **fields):
    frame = {
        "op": "submit",
        "id": job_id,
        "benchmark": "plot",
        "scale": SCALE,
    }
    frame.update(fields)
    return frame


def test_service_config_validation(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        ServiceConfig(socket_path="s", cache_dir="c", workers=0)
    with pytest.raises(ValueError, match="checkpoint_every"):
        ServiceConfig(socket_path="s", cache_dir="c", checkpoint_every=0)


def test_submit_admits_journals_and_acks(tmp_path):
    from repro.service.app import Connection

    service, _ = make_service(tmp_path)
    conn = Connection()
    service._dispatch(submit_frame("job-1"), conn)
    (ack,) = drain_frames(conn)
    assert ack["type"] == "accepted"
    assert ack["id"] == "job-1"
    assert ack["dedup"] is False
    assert len(ack["digest"]) == 64
    assert service.admission.depth() == 1
    (record,) = service.journal.records()
    assert record["kind"] == "submitted"
    assert record["job"] == "job-1"


def test_submit_overload_is_shed_with_typed_rejection(tmp_path):
    from repro.service.app import Connection

    service, _ = make_service(tmp_path, queue_limit=2)
    conn = Connection()
    for index in range(3):
        # distinct scales, so the submits cannot dedupe onto one digest
        service._dispatch(
            submit_frame(f"job-{index}", scale=SCALE * (index + 1)),
            conn,
        )
    frames = drain_frames(conn)
    assert [f["type"] for f in frames] == [
        "accepted", "accepted", "rejected",
    ]
    assert frames[2]["error"]["code"] == "service_overloaded"
    assert frames[2]["error"]["queue_limit"] == 2
    # the shed job left no trace: no journal record, no job entry
    assert len(service.journal.records()) == 2
    assert "job-2" not in service.jobs


def test_submit_dedupes_in_flight_digest(tmp_path):
    from repro.service.app import Connection

    service, _ = make_service(tmp_path)
    conn = Connection()
    service._dispatch(submit_frame("job-1"), conn)
    service._dispatch(submit_frame("job-2"), conn)
    first, second = drain_frames(conn)
    assert first["dedup"] is False
    assert second["dedup"] is True
    assert second["primary"] == "job-1"
    assert second["digest"] == first["digest"]
    assert service.counters["deduped"] == 1
    # only the primary occupies the queue; the dedup attached as waiter
    assert service.admission.depth() == 1
    primary = service.jobs["job-1"]
    assert [client_id for _, client_id in primary.waiters] == [
        "job-1", "job-2",
    ]
    # a different backend changes the digest: no dedupe across backends
    service._dispatch(
        submit_frame("job-3", backend="superblock"), conn
    )
    (third,) = drain_frames(conn)
    assert third["dedup"] is False
    assert third["digest"] != first["digest"]


def test_submit_quota_rejection_names_retry_after(tmp_path):
    from repro.service.app import Connection

    service, clock = make_service(
        tmp_path, quota_rate=1.0, quota_burst=1.0
    )
    conn = Connection()
    service._dispatch(submit_frame("job-1", tenant="t0"), conn)
    service._dispatch(submit_frame("job-2", tenant="t0"), conn)
    # another tenant's bucket is unaffected
    service._dispatch(submit_frame("job-3", tenant="t1"), conn)
    frames = drain_frames(conn)
    assert [f["type"] for f in frames] == [
        "accepted", "rejected", "accepted",
    ]
    assert frames[1]["error"]["code"] == "quota_exceeded"
    assert frames[1]["error"]["retry_after_s"] == pytest.approx(1.0)
    clock.advance(1.0)
    service._dispatch(submit_frame("job-4", tenant="t0"), conn)
    (retry,) = drain_frames(conn)
    assert retry["type"] == "accepted"


def test_submit_rejects_unknown_benchmark_and_predictor(tmp_path):
    from repro.service.app import Connection

    service, _ = make_service(tmp_path)
    conn = Connection()
    service._dispatch(submit_frame("job-1", benchmark="no-such"), conn)
    service._dispatch(
        submit_frame("job-2", predictors=["perceptron"]), conn
    )
    bad_bench, bad_pred = drain_frames(conn)
    assert bad_bench["type"] == "rejected"
    assert "no-such" in bad_bench["error"]["message"]
    assert bad_pred["type"] == "rejected"
    assert "perceptron" in bad_pred["error"]["message"]
    assert service.admission.depth() == 0


def test_submit_rejects_duplicate_live_job_id(tmp_path):
    from repro.service.app import Connection

    service, _ = make_service(tmp_path)
    conn = Connection()
    service._dispatch(submit_frame("job-1"), conn)
    service._dispatch(submit_frame("job-1", scale=2 * SCALE), conn)
    _, duplicate = drain_frames(conn)
    assert duplicate["type"] == "rejected"
    assert "already in flight" in duplicate["error"]["message"]


def test_unknown_op_gets_typed_rejection(tmp_path):
    from repro.service.app import Connection

    service, _ = make_service(tmp_path)
    conn = Connection()
    service._dispatch({"op": "frobnicate"}, conn)
    (frame,) = drain_frames(conn)
    assert frame["type"] == "rejected"
    assert "frobnicate" in frame["error"]["message"]


def test_queued_deadline_expiry_cancels_without_launching(tmp_path):
    from repro.service.app import Connection

    service, clock = make_service(tmp_path)
    conn = Connection()
    service._dispatch(submit_frame("job-1", deadline_s=1.0), conn)
    drain_frames(conn)
    clock.advance(2.0)
    service._expire_queued(clock())
    (frame,) = drain_frames(conn)
    assert frame["type"] == "cancelled"
    assert frame["error"]["code"] == "job_cancelled"
    assert "deadline" in frame["error"]["message"]
    # the cancellation is terminal in the journal: no orphan to resume
    assert service.journal.orphans() == []
    done = service.journal.records()[-1]
    assert done == {
        "kind": "done",
        "job": "job-1",
        "status": "cancelled",
        "error": done["error"],
        "v": done["v"],
    }


def test_launch_cancels_already_expired_job(tmp_path):
    from repro.service.app import Connection

    service, clock = make_service(tmp_path)
    conn = Connection()
    service._dispatch(submit_frame("job-1", deadline_s=0.5), conn)
    drain_frames(conn)
    clock.advance(1.0)
    service._launch(clock())  # must cancel, never start a dead worker
    (frame,) = drain_frames(conn)
    assert frame["type"] == "cancelled"
    assert not service.running


def test_recover_reenqueues_journal_orphans(tmp_path):
    service, _ = make_service(tmp_path)
    job_done = make_job("job-done")
    job_lost = make_job(
        "job-lost", digest="e" * 64, predictors=("gshare:10",)
    )
    service.journal.record_submitted(job_done)
    service.journal.record_done("job-done", "completed")
    service.journal.record_submitted(job_lost)
    recovered, _ = make_service(tmp_path)
    recovered._recover()
    assert recovered.counters["recovered"] == 1
    assert recovered.admission.depth() == 1
    job = recovered.jobs["job-lost"]
    assert job.recovered is True
    assert job.waiters == []  # its client died with the old daemon
    assert job.deadline_s is None
    assert job.predictors == ("gshare:10",)
    assert recovered.inflight[job.stem] is job


def test_recover_skips_unknown_benchmarks(tmp_path):
    service, _ = make_service(tmp_path)
    service.journal.append(
        {"kind": "submitted", "job": "job-x", "benchmark": "retired",
         "scale": 1.0, "trace_limit": None, "backend": "interp",
         "digest": "f" * 64, "predictors": []}
    )
    recovered, _ = make_service(tmp_path)
    recovered._recover()
    assert recovered.counters["recovered"] == 0
    assert recovered.admission.depth() == 0


def test_stats_frame_shape_and_cache_hit_ratio(tmp_path):
    service, _ = make_service(tmp_path)
    service.counters["simulated"] = 1
    service.counters["store_hits"] = 2
    service.counters["deduped"] = 1
    frame = service.stats_frame()
    assert frame["type"] == "stats"
    assert frame["schema_version"] == SCHEMA_VERSION
    assert frame["cache_hit_ratio"] == pytest.approx(3 / 4)
    assert frame["admission"]["queue_limit"] == 16
    assert frame["store"] == {"corrupt_events": 0, "claim_waits": 0}
    assert decode_frame(encode_frame(frame)) == frame


# -- loadgen report shape ----------------------------------------------------


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile([], 0.5) == 0.0
    assert _percentile(values, 0.50) == 2.0
    assert _percentile(values, 0.99) == 4.0
    assert _percentile([7.5], 0.99) == 7.5


def test_loadgen_config_validation():
    with pytest.raises(ValueError, match="rate"):
        LoadgenConfig(socket_path="s", rate=0.0)
    with pytest.raises(ValueError, match="jobs"):
        LoadgenConfig(socket_path="s", jobs=0)
    with pytest.raises(ValueError, match="benchmark"):
        LoadgenConfig(socket_path="s", benchmarks=())


def test_summarize_classifies_outcomes():
    config = LoadgenConfig(socket_path="s", rate=5.0, jobs=4)
    records = [
        RequestOutcome(0, "plot", "t0", outcome="completed",
                       latency_s=1.0),
        RequestOutcome(1, "plot", "t0", outcome="completed",
                       latency_s=3.0),
        RequestOutcome(2, "plot", "t1", outcome="rejected",
                       error_code="service_overloaded"),
        RequestOutcome(3, "plot", "t1", outcome="dropped"),
    ]
    stats = {"jobs": {"completed": 3}, "cache_hit_ratio": 0.5,
             "admission": {"shed": 1}, "tenants": {}}
    report = summarize(records, 2.0, stats, config)
    assert report["completed"] == 2
    assert report["rejected"] == 1
    assert report["rejected_overloaded"] == 1
    assert report["dropped"] == 1
    assert report["jobs_per_sec"] == pytest.approx(1.0)
    assert report["latency_p50_s"] == pytest.approx(1.0)
    assert report["latency_p99_s"] == pytest.approx(3.0)
    assert report["shed_rate"] == pytest.approx(0.25)
    assert report["cache_hit_ratio"] == 0.5
    assert report["service"]["admission"] == {"shed": 1}
    assert json.loads(json.dumps(report)) == report  # BENCH_service.json


# -- the real daemon over a unix socket --------------------------------------


def short_socket_dir():
    """Unix socket paths are capped (~108 bytes); stay under /tmp."""
    return Path(tempfile.mkdtemp(prefix="repro-svc-", dir="/tmp"))


async def boot_service(config):
    service = AnalysisService(config)
    task = asyncio.create_task(service.run())
    for _ in range(1000):
        if task.done():
            task.result()  # surface a boot failure instead of hanging
        if os.path.exists(config.socket_path):
            return service, task
        await asyncio.sleep(0.01)
    raise AssertionError("daemon socket never appeared")


async def drain_service(task):
    interrupt.request_drain()
    assert await asyncio.wait_for(task, timeout=120) == 0


async def collect_until(reader, done, frames=None, timeout=120.0):
    """Read frames until ``done(frame)``; returns everything read."""
    frames = [] if frames is None else frames
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        assert remaining > 0, f"timed out waiting on frames: {frames}"
        frame = await asyncio.wait_for(read_frame(reader), remaining)
        assert frame is not None, f"daemon hung up early: {frames}"
        frames.append(frame)
        if done(frame):
            return frames


def terminal_for(job_id):
    return lambda frame: (
        frame.get("id") == job_id
        and frame.get("type") in
        ("completed", "failed", "cancelled", "interrupted", "rejected")
    )


def test_daemon_end_to_end_dedupe_and_store_hit():
    """Boot the real daemon twice on one cache: ping, submit with a
    predictor bank, dedupe a concurrent identical submit, then restart
    and watch the same submit come back as a store hit."""
    root = short_socket_dir()
    config = ServiceConfig(
        socket_path=str(root / "svc.sock"),
        cache_dir=str(root / "cache"),
        workers=2,
        checkpoint_every=2000,
    )
    submit = {
        "op": "submit",
        "tenant": "t0",
        "benchmark": "plot",
        "scale": SCALE,
        "predictors": ["bimodal:512", "always_taken"],
    }

    async def first_run():
        service, task = await boot_service(config)
        try:
            reader, writer = await asyncio.open_unix_connection(
                config.socket_path
            )
            writer.write(encode_frame({"op": "ping"}))
            writer.write(encode_frame(dict(submit, id="job-a")))
            writer.write(encode_frame(dict(submit, id="job-b")))
            await writer.drain()
            frames = await collect_until(reader, terminal_for("job-a"))
            frames = await collect_until(
                reader, terminal_for("job-b"), frames
            )
            writer.write(encode_frame({"op": "stats"}))
            await writer.drain()
            frames = await collect_until(
                reader, lambda f: f.get("type") == "stats", frames
            )
            writer.close()
            return frames
        finally:
            await drain_service(task)

    frames = asyncio.run(first_run())
    by_type = {}
    for frame in frames:
        by_type.setdefault(frame["type"], []).append(frame)
    assert len(by_type["pong"]) == 1
    acks = {f["id"]: f for f in by_type["accepted"]}
    dedups = sorted(f["dedup"] for f in acks.values())
    assert dedups == [False, True]
    done = {f["id"]: f for f in by_type["completed"]}
    assert set(done) == {"job-a", "job-b"}
    primary = done["job-a"] if acks["job-b"]["dedup"] else done["job-b"]
    assert primary["source"] in ("simulated", "resimulated")
    # both waiters got identical results for the one simulation
    assert done["job-a"]["digest"] == done["job-b"]["digest"]
    assert done["job-a"]["predictions"] == done["job-b"]["predictions"]
    bank = done["job-a"]["predictions"]
    assert set(bank) == {"bimodal:512", "always_taken"}
    for result in bank.values():
        assert result["branches"] > 0
        assert 0.0 <= result["misprediction_rate"] <= 1.0
    assert done["job-a"]["pipeline"]["events"] > 0
    (stats,) = by_type["stats"]
    assert stats["jobs"]["simulated"] == 1
    assert stats["jobs"]["deduped"] == 1
    # one *job* completed (the dedup attached as a second waiter)
    assert stats["jobs"]["completed"] == 1
    assert stats["cache_hit_ratio"] == pytest.approx(0.5)

    async def second_run():
        service, task = await boot_service(config)
        try:
            reader, writer = await asyncio.open_unix_connection(
                config.socket_path
            )
            writer.write(encode_frame(dict(submit, id="job-c")))
            await writer.drain()
            frames = await collect_until(reader, terminal_for("job-c"))
            writer.close()
            return frames, service.counters["recovered"]
        finally:
            await drain_service(task)

    frames, recovered = asyncio.run(second_run())
    assert recovered == 0  # the first daemon drained cleanly
    hit = frames[-1]
    assert hit["type"] == "completed"
    assert hit["source"] == "store"
    assert hit["digest"] == done["job-a"]["digest"]
    assert set(hit["predictions"]) == {"bimodal:512", "always_taken"}

    # the socket was removed on shutdown; the journal shows a clean
    # lifecycle (every submitted job has a terminal done record)
    assert not os.path.exists(config.socket_path)
    journal = ServiceJournal(
        Path(config.cache_dir) / "service"
    )
    assert journal.orphans() == []


def test_daemon_deadline_cancels_running_job():
    """A running job whose deadline expires is cancelled through the
    worker-timeout path: SIGTERM, checkpoint on the way down, a typed
    ``cancelled`` frame — and the daemon stays healthy afterwards."""
    root = short_socket_dir()
    config = ServiceConfig(
        socket_path=str(root / "svc.sock"),
        cache_dir=str(root / "cache"),
        workers=1,
        retries=0,
        checkpoint_every=500,
    )

    async def scenario():
        service, task = await boot_service(config)
        try:
            reader, writer = await asyncio.open_unix_connection(
                config.socket_path
            )
            writer.write(encode_frame({
                "op": "submit",
                "id": "job-slow",
                "benchmark": "plot",
                "scale": 1.0,
                "deadline_s": 0.3,
            }))
            await writer.drain()
            frames = await collect_until(
                reader, terminal_for("job-slow")
            )
            # the daemon is still serving after the cancellation
            writer.write(encode_frame({"op": "ping"}))
            await writer.drain()
            frames = await collect_until(
                reader, lambda f: f.get("type") == "pong", frames
            )
            writer.close()
            return frames
        finally:
            await drain_service(task)

    frames = asyncio.run(scenario())
    cancelled = next(f for f in frames if f["type"] == "cancelled")
    assert cancelled["id"] == "job-slow"
    assert cancelled["error"]["code"] == "job_cancelled"
    assert "deadline" in cancelled["error"]["message"]
    journal = ServiceJournal(Path(config.cache_dir) / "service")
    done = [r for r in journal.records() if r.get("kind") == "done"]
    assert done[-1]["status"] == "cancelled"
    assert journal.orphans() == []  # cancellation is terminal
