"""Maximal-clique enumeration tests."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cliques import (
    CliqueLimitExceeded,
    maximal_clique_stats,
    maximal_cliques,
)
from repro.analysis.conflict_graph import ConflictGraph


def _graph(edges, nodes=()):
    graph = ConflictGraph()
    for pc in nodes:
        graph.add_node(pc)
    for a, b in edges:
        graph.add_edge(a, b, 100)
    return graph


def _bruteforce_maximal_cliques(graph):
    nodes = graph.nodes()
    cliques = set()
    for size in range(1, len(nodes) + 1):
        for combo in itertools.combinations(nodes, size):
            if all(
                graph.has_edge(a, b)
                for a, b in itertools.combinations(combo, 2)
            ):
                cliques.add(frozenset(combo))
    return {
        c for c in cliques
        if not any(c < other for other in cliques)
    }


def test_triangle_is_one_clique():
    graph = _graph([(1, 2), (2, 3), (1, 3)])
    assert maximal_cliques(graph) == [frozenset({1, 2, 3})]


def test_path_yields_edge_cliques():
    graph = _graph([(1, 2), (2, 3)])
    assert set(maximal_cliques(graph)) == {
        frozenset({1, 2}), frozenset({2, 3})
    }


def test_isolated_node_is_a_maximal_clique():
    graph = _graph([(1, 2)], nodes=[9])
    assert frozenset({9}) in set(maximal_cliques(graph))


def test_overlapping_cliques_both_reported():
    # two triangles sharing an edge: {1,2,3} and {2,3,4}
    graph = _graph([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
    assert set(maximal_cliques(graph)) == {
        frozenset({1, 2, 3}), frozenset({2, 3, 4})
    }


def test_empty_graph():
    assert maximal_cliques(ConflictGraph()) == []
    stats = maximal_clique_stats(ConflictGraph())
    assert stats.clique_count == 0


def test_limit_enforced():
    # a complete tripartite-ish construction with many maximal cliques:
    # K(3,3,3) as complement-free... simpler: 3 disjoint edges -> 3 cliques
    graph = _graph([(1, 2), (3, 4), (5, 6)])
    with pytest.raises(CliqueLimitExceeded):
        maximal_cliques(graph, limit=2)


def test_stats_on_overlap():
    graph = _graph([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
    stats = maximal_clique_stats(graph)
    assert stats.clique_count == 2
    assert stats.average_size == 3.0
    assert stats.largest_size == 3
    # 4 nodes, total memberships 6 -> 1.5 cliques per branch
    assert stats.membership_per_branch == pytest.approx(1.5)


def test_deterministic_order():
    graph = _graph([(5, 1), (1, 9), (9, 5), (2, 9)])
    assert maximal_cliques(graph) == maximal_cliques(graph)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=20,
    )
)
def test_matches_bruteforce_on_small_graphs(edges):
    graph = ConflictGraph()
    for a, b in edges:
        if a != b:
            graph.add_edge(a, b, 10)
    expected = _bruteforce_maximal_cliques(graph)
    assert set(maximal_cliques(graph)) == expected
