"""The superblock backend must be indistinguishable from the interpreter.

Three layers of evidence:

* a suite sweep — every benchmark analog runs under both backends
  through a full event pipeline (profiler + chunked trace builder) and
  must produce byte-identical trace columns, profiles, pipeline stats
  and run results;
* hypothesis — random branchy looping programs, where the compiled
  self-loop and trace-inlining paths must match the interpreter's final
  architectural state and event stream exactly;
* the :mod:`repro.sim.api` resolution rules themselves.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.pipeline.bus import BranchEventBus
from repro.pipeline.consumers import InterleaveConsumer, TraceBuilder
from repro.sim import (
    BACKENDS,
    DEFAULT_BACKEND,
    InterpBackend,
    Simulator,
    SimulatorBackend,
    SuperblockBackend,
    backend_names,
    get_backend,
)
from repro.workloads import ALL_BENCHMARKS, build_workload, get_benchmark

#: Small scale + a fuel cap keep the sweep fast; truncation is
#: deterministic, so identity on the truncated prefix is just as strong.
SCALE = 0.02
FUEL_CAP = 150_000

#: Two cheap kernels for CI smoke (mirrored by the workflow's
#: backend-differential job).
SMOKE_KERNELS = ("plot", "pgp")


def _pipeline_run(built, backend, chunk_events=None):
    """Run *built* under *backend* with the full fused pipeline."""
    profiler = InterleaveConsumer(label="diff")
    builder = TraceBuilder(label="diff")
    kwargs = {} if chunk_events is None else {"chunk_events": chunk_events}
    bus = BranchEventBus([profiler, builder], **kwargs)
    sim = Simulator(
        built.program,
        input_data=built.input_data,
        branch_hook=bus,
        random_seed=built.spec.random_seed,
        backend=backend,
    )
    result = sim.run(max_instructions=FUEL_CAP)
    bus.finish()
    trace = builder.result
    profile = profiler.result
    profile_doc = json.dumps(
        {
            "branches": {
                pc: [s.executions, s.taken]
                for pc, s in sorted(profile.branches.items())
            },
            "pairs": {
                f"{a}:{b}": count
                for (a, b), count in sorted(profile.pairs.items())
            },
        },
        sort_keys=True,
    )
    stats = bus.stats
    return (
        trace.pcs.tobytes(),
        trace.targets.tobytes(),
        trace.taken.tobytes(),
        trace.timestamps.tobytes(),
        profile_doc,
        (stats.events, stats.delivered, stats.chunk_flushes),
        (
            result.instructions,
            result.conditional_branches,
            result.taken_branches,
            result.halted,
            result.exit_code,
            result.output,
        ),
    )


@pytest.mark.parametrize("kernel", ALL_BENCHMARKS)
def test_suite_kernel_is_byte_identical(kernel):
    built = build_workload(get_benchmark(kernel, scale=SCALE))
    assert _pipeline_run(built, "interp") == _pipeline_run(
        built, "superblock"
    )


@pytest.mark.parametrize("kernel", SMOKE_KERNELS)
def test_smoke_kernels_with_tiny_chunks(kernel):
    # a 64-event chunk forces thousands of mid-run flushes: the compiled
    # bus mode must hit exactly the interpreter's chunk boundaries
    built = build_workload(get_benchmark(kernel, scale=SCALE))
    assert _pipeline_run(built, "interp", chunk_events=64) == _pipeline_run(
        built, "superblock", chunk_events=64
    )


# -- hypothesis: random branchy looping programs --------------------------

_REGS = list(range(5, 13))
_BRANCH_OPS = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]
_ALU_OPS = ["add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra"]

_block = st.tuples(
    st.lists(
        st.tuples(
            st.sampled_from(_ALU_OPS),
            st.sampled_from(_REGS),
            st.sampled_from(_REGS),
            st.sampled_from(_REGS),
        ),
        min_size=1,
        max_size=5,
    ),
    st.sampled_from(_BRANCH_OPS),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
)


def _events(sim_cls, program, backend):
    events = []

    class Recorder:
        def on_branch(self, pc, target, taken, timestamp):
            events.append((pc, target, taken, timestamp))

    sim = sim_cls(program, branch_hook=Recorder(), backend=backend)
    sim.run(max_instructions=200_000)
    return events, list(sim.state.regs), sim.state.pc, sim.state.halted


@settings(max_examples=60, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
        min_size=len(_REGS),
        max_size=len(_REGS),
    ),
    blocks=st.lists(_block, min_size=1, max_size=6),
    trip=st.integers(min_value=1, max_value=9),
)
def test_random_branchy_loop_matches_interpreter(seeds, blocks, trip):
    # an outer counted loop (exercising the compiled self-loop path)
    # around blocks of ALU work, each ending in a forward conditional
    # branch that skips the next block
    lines = ["main:"]
    for reg, value in zip(_REGS, seeds):
        lines.append(f"    li x{reg}, {value}")
    lines.append(f"    li x13, {trip}")
    lines.append("loop:")
    for i, (alu, branch, rs1, rs2) in enumerate(blocks):
        lines.append(f"block{i}:")
        for op, rd, a, b in alu:
            lines.append(f"    {op} x{rd}, x{a}, x{b}")
        lines.append(f"    {branch} x{rs1}, x{rs2}, block{i + 1}")
        lines.append(f"    addi x{rs1}, x{rs1}, 1")
    lines.append(f"block{len(blocks)}:")
    lines.append("    addi x13, x13, -1")
    lines.append("    bne x13, x0, loop")
    lines.append("    halt")
    program = assemble("\n".join(lines))

    interp = _events(Simulator, program, "interp")
    superblock = _events(Simulator, program, "superblock")
    assert interp == superblock


# -- backend resolution ----------------------------------------------------


def test_backend_registry():
    assert backend_names() == ["interp", "superblock"]
    assert DEFAULT_BACKEND == "interp"
    assert isinstance(BACKENDS["interp"], InterpBackend)
    assert isinstance(BACKENDS["superblock"], SuperblockBackend)


def test_get_backend_resolution():
    assert get_backend(None).name == "interp"
    assert get_backend("superblock").name == "superblock"
    instance = SuperblockBackend()
    assert get_backend(instance) is instance
    assert isinstance(instance, SimulatorBackend)
    with pytest.raises(ValueError, match="unknown simulation backend"):
        get_backend("jit")
    with pytest.raises(ValueError, match="unknown simulation backend"):
        get_backend(42)


def test_simulator_accepts_backend_instance():
    program = assemble("main:\n    li x5, 7\n    halt")
    sim = Simulator(program, backend=SuperblockBackend())
    sim.run(allow_truncation=False)
    assert sim.state.read(5) == 7
    assert sim.backend.name == "superblock"
