"""Ablation runners and the experiment registry, at test scale."""

import pytest

from conftest import TEST_THRESHOLD
from repro.eval.ablations import (
    format_hash_baseline,
    format_input_sensitivity,
    format_predictor_family,
    format_threshold_ablation,
    run_hash_baseline,
    run_input_sensitivity,
    run_predictor_family,
    run_threshold_ablation,
)
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.static_compare import (
    format_static_compare,
    run_static_compare,
)


def test_threshold_ablation_monotone_sets(runner):
    rows = run_threshold_ablation(
        runner, ["compress"], thresholds=(5, 20, 80)
    )
    assert [r.threshold for r in rows] == [5, 20, 80]
    # higher thresholds prune edges -> never fewer, larger sets
    sets = [r.total_sets for r in rows]
    assert sets == sorted(sets)
    sizes = [r.average_static_size for r in rows]
    assert sizes == sorted(sizes, reverse=True)
    assert "threshold" in format_threshold_ablation(rows)


def test_input_sensitivity_rows(runner):
    rows = run_input_sensitivity(runner, pairs=("ss",))
    (row,) = rows
    assert row.benchmark == "ss"
    assert row.size_a >= 1 and row.size_b >= 1 and row.size_merged >= 1
    # merged profile never needs less than the bigger single-input one
    assert row.size_merged >= max(row.size_a, row.size_b) - 2
    assert row.cross_cost_a_on_b >= 0
    assert "input A" in format_input_sensitivity(rows)


def test_predictor_family_results(runner):
    results = run_predictor_family(runner, ["compress"], history_bits=10)
    rates = results["compress"]
    assert set(rates) == {
        "PAg", "GAg", "gshare", "bimodal", "hybrid", "agree",
        "bias-filtered", "static-heur"
    }
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())
    # the heuristic predictor is static: it must beat a coin flip but
    # cannot beat the trained table predictors
    assert rates["static-heur"] < 0.5
    assert rates["static-heur"] >= rates["PAg"]
    text = format_predictor_family(results)
    assert "gshare" in text
    assert format_predictor_family({}) == "(no results)"


def test_hash_baseline_rows(runner):
    rows = run_hash_baseline(runner, ["compress"], bht_size=64)
    (row,) = rows
    # the profile-guided allocation never loses to blind hashing at the
    # conflict-cost objective it optimises
    assert row.allocated_cost <= row.conventional_cost
    assert row.allocated_cost <= row.xorfold_cost
    assert "xor-fold" in format_hash_baseline(rows)


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4",
        "figure3", "figure4",
        "ablation_threshold", "ablation_inputs",
        "ablation_predictors", "ablation_hash", "ablation_groups",
        "ablation_alignment", "ablation_cliques", "ablation_history",
        "static_compare", "verify_static",
    }
    for experiment in EXPERIMENTS.values():
        assert experiment.description
        assert experiment.paper_artifact


def test_run_experiment_unknown_id(runner):
    with pytest.raises(KeyError):
        run_experiment("table9", runner)


def test_run_experiment_renders_text(runner):
    text = run_experiment("table2", runner)
    assert "Table 2" in text
    assert "compress" in text


def test_static_compare_rows(runner):
    rows = run_static_compare(
        runner, benchmarks=["compress", "chess"], bht_size=32,
        threshold=TEST_THRESHOLD,
    )
    assert [r.benchmark for r in rows] == ["compress", "chess"]
    for row in rows:
        # the profiled allocation optimises the graph it is scored on,
        # so the conventional baseline bounds it; the static allocation
        # holds no such guarantee (it never saw the profile)
        assert 0 <= row.profiled_cost <= row.conventional
        assert row.static_cost >= 0
        assert row.static_branches > 0 and row.predicted_edges > 0
        if row.profiled_cost:
            assert row.ratio == row.static_cost / row.profiled_cost
        elif row.static_cost == 0:
            assert row.ratio == 1.0  # both allocations reached zero
        else:
            assert row.ratio is None
    text = format_static_compare(rows)
    assert "static/prof" in text and "compress" in text
