"""Static, bimodal, hybrid and agree predictor tests."""

import pytest

from repro.predictors.agree import AgreePredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.static_pred import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
    ProfileStaticPredictor,
)
from repro.profiling.profile import BranchStats, InterleaveProfile


def test_always_taken_and_not_taken():
    assert AlwaysTakenPredictor().predict(0x100)
    assert not AlwaysNotTakenPredictor().predict(0x100)


def test_btfnt_uses_target_direction():
    predictor = BTFNTPredictor()
    assert predictor.predict(0x100, target=0x80)       # backward: taken
    assert not predictor.predict(0x100, target=0x200)  # forward: not taken


def test_profile_static_majority_directions():
    profile = InterleaveProfile(
        branches={
            0x100: BranchStats(100, 90),
            0x200: BranchStats(100, 10),
        }
    )
    predictor = ProfileStaticPredictor(profile)
    assert predictor.predict(0x100)
    assert not predictor.predict(0x200)
    # unseen branches fall back to BTFNT
    assert predictor.predict(0x300, target=0x80)


def test_profile_static_requires_a_source():
    with pytest.raises(ValueError):
        ProfileStaticPredictor()


def test_profile_static_explicit_directions_override():
    predictor = ProfileStaticPredictor(directions={0x100: False})
    assert not predictor.predict(0x100)


def test_bimodal_learns_bias():
    predictor = BimodalPredictor(size=64)
    for _ in range(4):
        predictor.update(0x100, False)
    assert not predictor.predict(0x100)


def test_bimodal_aliases_by_construction():
    predictor = BimodalPredictor(size=4)
    for _ in range(4):
        predictor.update(0x1000, False)
    # 0x1000 and 0x1040 share entry (mod 4 after word shift)
    assert not predictor.predict(0x1000 + 4 * 4)


def test_bimodal_size_mismatch_rejected():
    from repro.predictors.indexing import PCModuloIndex

    with pytest.raises(ValueError):
        BimodalPredictor(size=64, index_fn=PCModuloIndex(32))


def test_hybrid_selector_picks_the_better_component():
    # component 1 (gshare) learns the pattern; component 2 (always wrong
    # here) is bimodal fighting a strict alternation
    hybrid = HybridPredictor(
        GSharePredictor(history_bits=6),
        BimodalPredictor(size=64),
        selector_size=64,
    )
    wrong = 0
    for i in range(600):
        taken = i % 2 == 0
        if hybrid.access(0x1000, taken) != taken and i > 100:
            wrong += 1
    assert wrong == 0


def test_hybrid_reset():
    hybrid = HybridPredictor(
        GSharePredictor(history_bits=4), BimodalPredictor(size=16),
        selector_size=16,
    )
    hybrid.access(0x10, True)
    hybrid.reset()
    assert hybrid.first.history == 0


def test_hybrid_selector_size_mismatch_rejected():
    from repro.predictors.indexing import PCModuloIndex

    with pytest.raises(ValueError):
        HybridPredictor(
            GSharePredictor(4), BimodalPredictor(16),
            selector_size=32, index_fn=PCModuloIndex(16),
        )


def test_agree_converts_destructive_interference():
    """Two opposite-bias branches that alias in the PHT: a raw gshare
    fights, the agree predictor's bias bits make the counters agree."""
    profile = InterleaveProfile(
        branches={
            0x1000: BranchStats(100, 100),
            0x2000: BranchStats(100, 0),
        }
    )
    agree = AgreePredictor(history_bits=4, profile=profile)
    wrong = 0
    for i in range(400):
        if agree.access(0x1000, True) is not True and i > 50:
            wrong += 1
        if agree.access(0x2000, False) is not False and i > 50:
            wrong += 1
    assert wrong == 0


def test_agree_first_outcome_sets_bias_without_profile():
    agree = AgreePredictor(history_bits=4)
    agree.update(0x100, False)
    assert agree.bias[0x100] is False


def test_agree_validation():
    with pytest.raises(ValueError):
        AgreePredictor(history_bits=0)


def test_agree_reset_keeps_profile_bias():
    profile = InterleaveProfile(branches={0x100: BranchStats(10, 10)})
    agree = AgreePredictor(history_bits=4, profile=profile)
    agree.reset()
    assert agree.bias[0x100] is True
    no_profile = AgreePredictor(history_bits=4)
    no_profile.update(0x100, True)
    no_profile.reset()
    assert no_profile.bias == {}
