"""Every assembly kernel is verified against its Python reference."""

import binascii

import pytest

from repro.asm.assembler import assemble
from repro.sim.machine import Simulator
from repro.workloads.kernels import (
    arrays,
    bintree,
    crc,
    fsm,
    hashtab,
    interp,
    kernel_registry,
    life,
    matmul,
    queens,
    rle,
    sieve,
    strsearch,
)
from repro.workloads.kernels.common import get_kernel, instantiate

SCRATCH = 0x0040_0000
SEED = 0x2545F491


def run_kernel(body_asm, main_asm, input_data=b"", seed=SEED):
    """Assemble main + kernel, run to completion, return (sim, ints)."""
    program = assemble(".text\nmain:\n" + main_asm + body_asm)
    simulator = Simulator(program, input_data=input_data, random_seed=seed)
    result = simulator.run(max_instructions=80_000_000,
                           allow_truncation=False)
    values = [int(x) for x in result.output.split()]
    return simulator, values


def _print_and_exit():
    return (
        "    mv a1, a0\n"
        "    li a0, 1\n"
        "    ecall\n"
        "    li a0, 0\n"
        "    li a1, 0\n"
        "    ecall\n"
    )


def xorshift_stream(seed=SEED):
    x = seed & 0xFFFFFFFF or 1
    while True:
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        yield x


def test_registry_contains_all_kernels():
    names = set(kernel_registry())
    assert names == {
        "rle", "fillrand", "checksum", "qsort", "crc", "matmul", "sieve",
        "queens", "strsearch", "hashtab", "bintree", "interp", "fsm", "life",
    }


def test_get_kernel_unknown_raises():
    with pytest.raises(KeyError):
        get_kernel("nope")


def test_instantiate_suffixes_all_labels():
    body = rle.emit("_7")
    assert "rle_7:" in body
    assert "rle_loop_7:" in body
    assert "@" not in body


def test_instantiate_rejects_bad_suffix():
    with pytest.raises(ValueError):
        instantiate("x@: nop", "_bad!")


def test_rle_matches_reference():
    data = b"aaabccccdd" * 30 + bytes(range(64))
    main = f"    li a0, {SCRATCH}\n    li a1, 0\n    call rle\n"
    sim, (length,) = run_kernel(
        rle.emit(""), main + _print_and_exit(), input_data=data
    )
    encoded = bytes(sim.state.memory.load_bytes(SCRATCH, length))
    assert encoded == rle.reference(data)


def test_rle_respects_byte_limit():
    data = b"abcabcabc" * 20
    main = f"    li a0, {SCRATCH}\n    li a1, 25\n    call rle\n"
    sim, (length,) = run_kernel(
        rle.emit(""), main + _print_and_exit(), input_data=data
    )
    encoded = bytes(sim.state.memory.load_bytes(SCRATCH, length))
    assert encoded == rle.reference(data, limit=25)


def test_rle_empty_input():
    main = f"    li a0, {SCRATCH}\n    li a1, 0\n    call rle\n"
    _, (length,) = run_kernel(rle.emit(""), main + _print_and_exit())
    assert length == 0


def test_rle_long_runs_capped_at_255():
    data = b"z" * 600
    main = f"    li a0, {SCRATCH}\n    li a1, 0\n    call rle\n"
    sim, (length,) = run_kernel(
        rle.emit(""), main + _print_and_exit(), input_data=data
    )
    encoded = bytes(sim.state.memory.load_bytes(SCRATCH, length))
    assert encoded == rle.reference(data)
    assert max(encoded[0::2]) == 255


def test_crc_matches_binascii():
    payload = b"The quick brown fox jumps over the lazy dog" * 4
    main = "    li a0, 0\n    call crc\n"
    _, (value,) = run_kernel(
        crc.emit(""), main + _print_and_exit(), input_data=payload
    )
    assert value & 0xFFFFFFFF == binascii.crc32(payload)


def test_crc_respects_byte_limit():
    payload = b"0123456789" * 10
    main = "    li a0, 17\n    call crc\n"
    _, (value,) = run_kernel(
        crc.emit(""), main + _print_and_exit(), input_data=payload
    )
    assert value & 0xFFFFFFFF == binascii.crc32(payload[:17])


def test_qsort_sorts_and_checksum_is_preserved():
    n = 150
    main = (
        f"    li a0, {SCRATCH}\n    li a1, {n}\n    call fillrand\n"
        f"    li a0, {SCRATCH}\n    li a1, {n}\n    call checksum\n"
        "    mv s3, a0\n"
        f"    li a0, {SCRATCH}\n    li a1, {n}\n    call qsort\n"
        f"    li a0, {SCRATCH}\n    li a1, {n}\n    call checksum\n"
        "    sub a0, a0, s3\n"
    )
    sim, (diff,) = run_kernel(
        arrays.emit_fillrand("") + arrays.emit_checksum("")
        + arrays.emit_qsort(""),
        main + _print_and_exit(),
    )
    assert diff == 0  # sorting permutes, sum unchanged
    values = [sim.state.memory.load_word(SCRATCH + 4 * i) for i in range(n)]
    assert values == sorted(values)


def test_checksum_reference_wraps():
    assert arrays.checksum_reference([0x7FFFFFFF, 1]) == -(1 << 31)


def test_matmul_matches_reference():
    n = 5
    fill = (
        f"    li t0, {SCRATCH}\n    li t1, 0\n    li t2, {2 * n * n}\n"
        "mfill:\n"
        "    slli t3, t1, 2\n    add t3, t3, t0\n"
        "    addi t4, t1, 3\n    mul t4, t4, t4\n    sw t4, 0(t3)\n"
        "    addi t1, t1, 1\n    blt t1, t2, mfill\n"
    )
    main = fill + (
        f"    li a0, {SCRATCH}\n    li a1, {n}\n    call matmul\n"
        f"    li t0, {SCRATCH + 8 * n * n}\n"
        "    lw a1, 0(t0)\n    li a0, 1\n    ecall\n"
        f"    lw a1, {4 * (n * n - 1)}(t0)\n    li a0, 1\n    ecall\n"
        "    li a0, 0\n    li a1, 0\n    ecall\n"
    )
    _, outs = run_kernel(matmul.emit(""), main)
    a = [[(n * i + j + 3) ** 2 for j in range(n)] for i in range(n)]
    b = [[(n * n + n * i + j + 3) ** 2 for j in range(n)] for i in range(n)]
    expected = matmul.reference(a, b)
    assert outs == [expected[0][0], expected[n - 1][n - 1]]


@pytest.mark.parametrize("n,expected", [(100, 25), (1000, 168)])
def test_sieve_prime_counts(n, expected):
    main = f"    li a0, {SCRATCH}\n    li a1, {n}\n    call sieve\n"
    _, (count,) = run_kernel(sieve.emit(""), main + _print_and_exit())
    assert count == expected == sieve.reference(n)


@pytest.mark.parametrize("n", [4, 5, 6, 7])
def test_queens_known_solution_counts(n):
    main = f"    li a0, {n}\n    call queens\n"
    _, (count,) = run_kernel(queens.emit(""), main + _print_and_exit())
    assert count == queens.SOLUTIONS[n]


def test_strsearch_counts_occurrences():
    text = b"the theme of the anthem: breathe " * 15
    main = f"    li a0, {SCRATCH}\n    li a1, 0\n    call strsearch\n"
    _, (count,) = run_kernel(
        strsearch.emit(""), main + _print_and_exit(), input_data=text
    )
    assert count == strsearch.reference(text)


def test_strsearch_respects_byte_limit():
    text = b"the the the"
    main = f"    li a0, {SCRATCH}\n    li a1, 5\n    call strsearch\n"
    _, (count,) = run_kernel(
        strsearch.emit(""), main + _print_and_exit(), input_data=text
    )
    assert count == strsearch.reference(text, limit=5) == 1


def test_hashtab_distinct_key_count():
    ops = 300
    main = f"    li a0, {SCRATCH}\n    li a1, {ops}\n    call hashtab\n"
    _, (distinct,) = run_kernel(
        hashtab.emit(""), main + _print_and_exit()
    )
    rng = xorshift_stream()
    keys = [(next(rng) & 0x3FFF) | 1 for _ in range(ops)]
    assert distinct == len(hashtab.reference(keys))


def test_bintree_distinct_key_count():
    inserts = 500
    main = f"    li a0, {SCRATCH}\n    li a1, {inserts}\n    call bintree\n"
    _, (distinct,) = run_kernel(
        bintree.emit(""), main + _print_and_exit()
    )
    rng = xorshift_stream()
    assert distinct == len({next(rng) & 0xFFFF for _ in range(inserts)})


def test_bintree_arena_sizing_helper():
    assert bintree.arena_bytes(10) == 8 + 120


def test_interp_matches_reference_vm():
    n, steps = 48, 2000
    main = (
        f"    li a0, {SCRATCH}\n    li a1, {n}\n    li a2, {steps}\n"
        "    call interp\n"
    )
    _, (acc,) = run_kernel(interp.emit(""), main + _print_and_exit())
    rng = xorshift_stream()
    program = []
    for _ in range(n):
        r = next(rng)
        program.append((r & 7, (r >> 3) & 255))
    assert acc == interp.reference(program, steps)


def test_fsm_token_count_matches_reference():
    text = b"hello 123 world!! 42 foo_bar baz 7\n" * 12
    main = "    li a0, 0\n    call fsm\n"
    _, (tokens,) = run_kernel(
        fsm.emit(""), main + _print_and_exit(), input_data=text
    )
    assert tokens == fsm.reference(text)


def test_fsm_respects_byte_limit():
    text = b"abc 123 def 456"
    main = "    li a0, 7\n    call fsm\n"
    _, (tokens,) = run_kernel(
        fsm.emit(""), main + _print_and_exit(), input_data=text
    )
    assert tokens == fsm.reference(text, limit=7)


def test_life_matches_reference():
    gens = 6
    main = f"    li a0, {SCRATCH}\n    li a1, {gens}\n    call life\n"
    _, (alive,) = run_kernel(life.emit(""), main + _print_and_exit())
    rng = xorshift_stream()
    initial = [next(rng) & 1 for _ in range(life.CELLS)]
    assert alive == life.reference(initial, gens)


def test_life_reference_validates_grid():
    with pytest.raises(ValueError):
        life.reference([0, 1], 1)


def test_two_instances_are_independent():
    """The same kernel instantiated twice keeps separate state/labels."""
    data = b"xy" * 50
    body = rle.emit("") + rle.emit("_1")
    main = (
        f"    li a0, {SCRATCH}\n    li a1, 0\n    call rle\n"
        "    mv s3, a0\n"
        f"    li a0, {SCRATCH + 0x10000}\n    li a1, 0\n    call rle_1\n"
        "    sub a0, a0, s3\n"
    )
    _, (diff,) = run_kernel(body, main + _print_and_exit(), input_data=data)
    assert diff == 0  # identical work, identical result


def test_every_kernel_lints_clean_standalone():
    """Satellite check: each bundled kernel passes the static verifier on
    its own (no unreachable code, no branch-to-data, no undefined-register
    reads), both as the base instance and as a replicated copy."""
    from repro.static_analysis import lint_source

    for name, spec in sorted(kernel_registry().items()):
        for suffix in ("", "_7"):
            report = lint_source(spec.emit(suffix), name=f"{name}{suffix}")
            assert report.clean, report.render()
