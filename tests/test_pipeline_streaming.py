"""Streaming pipeline equivalence and bus semantics.

The load-bearing property of the single-pass pipeline: fusing the
profiler and the predictor bank onto the event bus changes *when* work
happens, never *what* is computed.  Fused one-pass results must equal the
classic capture-then-replay results exactly — same interleave profiles
(byte-identical JSON against the chunked replay path), same prediction
statistics including warmup handling — on arbitrary synthetic event
streams and on real kernel traces.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import __version__
from repro.__main__ import main
from repro.pipeline.bus import (
    DEFAULT_CHUNK_EVENTS,
    BranchEventBus,
    EventChunk,
)
from repro.pipeline.consumers import (
    InterleaveConsumer,
    PredictorConsumer,
    TraceBuilder,
    TraceStatsConsumer,
    replay_bank,
)
from repro.predictors.gshare import GSharePredictor
from repro.predictors.simulator import simulate_predictor
from repro.predictors.twolevel import GAgPredictor, PAgPredictor
from repro.profiling.interleave import InterleaveAnalyzer
from repro.schema import SCHEMA_VERSION, envelope
from repro.trace.capture import TraceCapture

#: (pc, taken) event streams over a small PC alphabet so branches recur.
event_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12).map(lambda i: 0x1000 + 4 * i),
        st.booleans(),
    ),
    max_size=200,
)


def _feed(bus, events):
    """Drive the bus exactly as the simulator hook would."""
    for count, (pc, taken) in enumerate(events, start=1):
        bus.on_branch(pc, pc + 8, taken, count)


def _classic(events, warmup):
    """The seed shape: per-event capture, scalar profile, scalar replay."""
    capture = TraceCapture()
    _feed(capture, events)
    trace = capture.finish("classic")
    analyzer = InterleaveAnalyzer(name="classic")
    for pc, taken in zip(trace.pcs.tolist(), trace.taken.tolist()):
        analyzer.observe(pc, taken)
    stats = simulate_predictor(
        GSharePredictor(history_bits=6),
        trace,
        warmup=warmup,
        chunked=False,
    )
    return analyzer.finish(), stats


@settings(max_examples=100, deadline=None)
@given(events=event_streams, chunk_events=st.integers(1, 64),
       warmup=st.integers(0, 50))
def test_fused_one_pass_matches_capture_then_replay(
    events, chunk_events, warmup
):
    """Property: one fused pass == classic capture-then-replay, exactly."""
    profiler = InterleaveConsumer(label="classic")
    bank = PredictorConsumer(
        GSharePredictor(history_bits=6), label="classic", warmup=warmup
    )
    bus = BranchEventBus([profiler, bank], chunk_events=chunk_events)
    _feed(bus, events)
    bus.finish()
    ref_profile, ref_stats = _classic(events, warmup)
    assert profiler.result.branches == ref_profile.branches
    assert profiler.result.pairs == ref_profile.pairs
    assert bank.result.branches == ref_stats.branches
    assert bank.result.mispredictions == ref_stats.mispredictions
    assert bank.result.per_branch == ref_stats.per_branch


@settings(max_examples=50, deadline=None)
@given(events=event_streams, chunk_events=st.integers(1, 64))
def test_trace_builder_reconstructs_the_event_stream(events, chunk_events):
    builder = TraceBuilder(label="t")
    stats = TraceStatsConsumer(label="t")
    bus = BranchEventBus([builder, stats], chunk_events=chunk_events)
    _feed(bus, events)
    bus.finish()
    trace = builder.result
    assert trace.pcs.tolist() == [pc for pc, _ in events]
    assert trace.taken.tolist() == [bool(t) for _, t in events]
    assert trace.timestamps.tolist() == list(range(1, len(events) + 1))
    assert stats.result.events == len(events)
    assert stats.result.static_branches == len({pc for pc, _ in events})


def test_fused_profile_byte_identical_to_replay(runner):
    """The engine's fused profile and a chunked replay of the archived
    trace serialize to the same bytes (same chunking → same dict order)."""
    artifacts = runner.artifacts("compress")
    profiler = InterleaveConsumer(label="compress")
    BranchEventBus.replay(artifacts.trace, [profiler])
    profiler.result.instructions = artifacts.profile.instructions
    assert profiler.result.to_json() == artifacts.profile.to_json()


def test_replay_bank_matches_scalar_loop_on_kernel_trace(runner):
    trace = runner.trace("compress")
    bank = [PAgPredictor.conventional(256, 8), GAgPredictor(8)]
    fused = replay_bank(trace, bank, warmup=1000, track_per_branch=True)
    for predictor in [PAgPredictor.conventional(256, 8), GAgPredictor(8)]:
        ref = simulate_predictor(
            predictor, trace, warmup=1000, chunked=False
        )
        got = fused[predictor.name]
        assert got.branches == ref.branches
        assert got.mispredictions == ref.mispredictions
        assert got.per_branch == ref.per_branch


def test_profile_and_predict_fused_equals_replayed():
    """Cold fused run == warm replay run, for profile and bank alike."""
    from repro.eval.runner import BenchmarkRunner

    fresh = BenchmarkRunner(scale=0.05)  # no shared state: must start cold
    bank = lambda: [GSharePredictor(history_bits=8), GAgPredictor(8)]
    fused = fresh.profile_and_predict("pgp", bank(), archive=True)
    replayed = fresh.profile_and_predict("pgp", bank())
    assert fused.fused and not replayed.fused
    assert fused.profile.to_json() == replayed.profile.to_json()
    for name, stats in fused.predictions.items():
        other = replayed.predictions[name]
        assert (stats.branches, stats.mispredictions) == (
            other.branches, other.mispredictions
        )


# -- capture limit semantics -------------------------------------------------


def test_capture_limit_not_multiple_of_chunk_truncates_exactly():
    capture = TraceCapture(limit=13, chunk_events=8)
    _feed(capture, [(0x1000 + 4 * (i % 5), i % 2 == 0) for i in range(40)])
    assert capture.saturated
    assert len(capture) == 13
    trace = capture.finish("limited")
    assert len(trace) == 13
    assert trace.timestamps.tolist() == list(range(1, 14))


def test_bus_limit_smaller_than_one_chunk():
    builder = TraceBuilder()
    bus = BranchEventBus([builder], chunk_events=64, limit=3)
    _feed(bus, [(0x1000, True)] * 10)
    stats = bus.finish()
    assert len(builder.result) == 3
    assert stats.truncated
    assert stats.events == 10 and stats.delivered == 3


def test_replay_honours_limit_exactly():
    capture = TraceCapture()
    _feed(capture, [(0x1000 + 4 * i, True) for i in range(20)])
    trace = capture.finish("t")
    builder = TraceBuilder()
    BranchEventBus.replay(trace, [builder], chunk_events=8, limit=11)
    assert len(builder.result) == 11
    assert builder.result.pcs.tolist() == trace.pcs[:11].tolist()


def test_empty_capture_finishes_to_well_formed_trace():
    trace = TraceCapture().finish("empty")
    assert len(trace) == 0
    assert trace.name == "empty"
    for column in (trace.pcs, trace.targets, trace.timestamps):
        assert column.dtype == np.uint64 and len(column) == 0
    assert trace.taken.dtype == bool and len(trace.taken) == 0


def test_zero_limit_capture_is_empty():
    capture = TraceCapture(limit=0)
    _feed(capture, [(0x1000, True)] * 5)
    assert len(capture.finish("zero")) == 0


# -- bus contract ------------------------------------------------------------


def test_duplicate_consumer_names_rejected():
    bus = BranchEventBus([InterleaveConsumer()])
    with pytest.raises(ValueError, match="duplicate"):
        bus.subscribe(InterleaveConsumer())


def test_finish_is_idempotent_and_blocks_subscription():
    consumer = TraceBuilder()
    bus = BranchEventBus([consumer])
    _feed(bus, [(0x1000, False)] * 3)
    first = bus.finish()
    assert bus.finish() is first
    assert len(consumer.result) == 3
    with pytest.raises(RuntimeError):
        bus.subscribe(InterleaveConsumer())


def test_observability_counters_cover_every_consumer():
    profiler = InterleaveConsumer()
    builder = TraceBuilder()
    bus = BranchEventBus([profiler, builder], chunk_events=4)
    _feed(bus, [(0x1000 + 4 * (i % 3), True) for i in range(10)])
    stats = bus.finish()
    assert stats.events == stats.delivered == 10
    assert stats.chunk_flushes == 3  # 4 + 4 + 2
    for name in ("interleave", "trace"):
        counters = stats.consumers[name]
        assert counters.events == 10 and counters.chunks == 3
        assert counters.seconds >= 0.0
    payload = stats.as_dict()
    assert [c["name"] for c in payload["consumers"]] == [
        "interleave", "trace",
    ]


def test_event_chunk_caches_both_representations():
    chunk = EventChunk.from_lists([1, 2], [3, 4], [True, False], [1, 2])
    assert chunk.arrays() is chunk.arrays()
    assert chunk.lists() is chunk.lists()
    assert chunk.pcs.dtype == np.uint64
    assert len(chunk) == 2
    assert DEFAULT_CHUNK_EVENTS == 1 << 16


# -- version consistency -----------------------------------------------------


def test_version_flag_reports_schema_v9(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert __version__ in out
    assert f"schema {SCHEMA_VERSION}" in out
    assert SCHEMA_VERSION == 9
    assert envelope("x", {}, {})["schema_version"] == 9


def test_engine_envelope_carries_pipeline_counters(runner):
    payload = runner.stats.as_dict()
    assert {"fused_runs", "replayed_runs", "pipeline"} <= set(payload)
    pipeline = payload["pipeline"]
    assert {"events", "delivered", "chunk_flushes", "truncated",
            "consumers"} <= set(pipeline)
    json.dumps(payload)  # envelope-ready
