"""Crash-safe shard supervisor: leases, classification, recovery, drain.

The supervisor's promise is that worker death is an *operational* event,
never a correctness event: kill any worker anywhere and the merged store
is byte-identical to an unsharded run (the digests never see shard
identity; the journal diff tells the restarted worker what is left).
The units pin the decision logic — the pid-probe-before-lease-age
ordering in ``classify_worker``, the capped exponential in
``restart_delay``, the fsynced throttled lease writes — and the
end-to-end tests inject real SIGKILLs, hangs and stalls through
``REPRO_FAULTS`` and assert recovery, reassignment and honest drains.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.checkpoint.journal import RunJournal
from repro.errors import ShardRestartsExhausted
from repro.eval import interrupt
from repro.eval.faults import FaultPlan
from repro.eval.shards import measured_costs, partition_selection
from repro.eval.supervisor import (
    LEASE_TIMEOUT_SECONDS,
    RESTART_DELAY_CAP,
    LeaseWriter,
    ShardSupervisor,
    classify_worker,
    read_lease,
    restart_delay,
)

SCALE = 0.02
SMOKE = ("plot", "compress", "pgp")


# -- restart backoff --------------------------------------------------------


def test_restart_delay_doubles_from_the_base():
    assert restart_delay(0.25, 1) == 0.25
    assert restart_delay(0.25, 2) == 0.5
    assert restart_delay(0.25, 3) == 1.0
    assert restart_delay(0.25, 4) == 2.0


def test_restart_delay_is_capped():
    assert restart_delay(1.0, 50) == RESTART_DELAY_CAP
    assert restart_delay(0.25, 1000, cap=2.0) == 2.0
    # the cap also clamps an oversized base
    assert restart_delay(100.0, 1, cap=3.0) == 3.0


def test_restart_delay_zeroth_restart_is_immediate():
    assert restart_delay(0.25, 0) == 0.0
    assert restart_delay(0.25, -1) == 0.0


# -- worker classification --------------------------------------------------


def test_dead_process_beats_a_fresh_lease():
    """The pid probe is checked first: a gone process is dead even if
    its lease file (which survives the writer) looks brand new."""
    assert classify_worker(False, 0.0, LEASE_TIMEOUT_SECONDS) == "dead"


def test_dead_process_beats_an_expired_lease():
    assert classify_worker(False, 1e9, LEASE_TIMEOUT_SECONDS) == "dead"


def test_live_process_with_expired_lease_is_a_straggler():
    assert classify_worker(True, 10.1, 10.0) == "straggler"


def test_live_process_with_fresh_lease_is_healthy():
    """Slow-but-heartbeating is healthy: never killed on age alone."""
    assert classify_worker(True, 9.9, 10.0) == "healthy"
    assert classify_worker(True, 0.0, 10.0) == "healthy"


# -- heartbeat leases -------------------------------------------------------


def test_lease_beat_writes_readable_payload(tmp_path):
    lease = LeaseWriter(tmp_path, slot=3, interval=0.0)
    lease.beat(benchmark="plot", events=1234)
    payload = read_lease(lease.path)
    assert payload is not None
    assert payload["slot"] == 3
    assert payload["benchmark"] == "plot"
    assert payload["events"] == 1234
    assert payload["pid"] > 0


def test_lease_beats_are_throttled_but_forceable(tmp_path):
    lease = LeaseWriter(tmp_path, slot=1, interval=3600.0)
    lease.beat(benchmark="a", events=1, force=True)
    lease.beat(benchmark="b", events=2)  # inside the interval: dropped
    assert read_lease(lease.path)["benchmark"] == "a"
    lease.beat(benchmark="c", events=3, force=True)
    assert read_lease(lease.path)["benchmark"] == "c"


def test_stalled_lease_never_writes(tmp_path):
    lease = LeaseWriter(tmp_path, slot=2, interval=0.0, stalled=True)
    lease.beat(benchmark="plot", events=1, force=True)
    assert not lease.path.exists()


def test_read_lease_tolerates_missing_and_torn(tmp_path):
    assert read_lease(tmp_path / "absent.json") is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"pid": 12')
    assert read_lease(torn) is None
    foreign = tmp_path / "foreign.json"
    foreign.write_text('[1, 2]')
    assert read_lease(foreign) is None


# -- shard fault plan parsing -----------------------------------------------


def test_compact_shard_faults_parse():
    plan = FaultPlan.from_compact("shard_kill:1@5000,lease_stall:2")
    assert plan.shard_kill == {"1": 5000}
    assert plan.lease_stall == (2,)
    hang = FaultPlan.from_compact("shard_hang:3")
    assert hang.shard_hang == (3,)


def test_shard_fault_plan_json_roundtrip():
    plan = FaultPlan(shard_kill={"2": 7000}, shard_hang=(1,))
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.shard_kill == {"2": 7000}
    assert clone.shard_hang == (1,)


# -- learned cost model -----------------------------------------------------


def _record(journal, benchmark, seconds, source="simulated"):
    journal.record_completed(
        benchmark, "ab" * 32, SCALE, None,
        backend="interp", source=source, seconds=seconds,
    )


def test_measured_costs_takes_the_median_of_recent_runs(tmp_path):
    journal = RunJournal(tmp_path)
    for seconds in (1.0, 9.0, 2.0):
        _record(journal, "plot", seconds)
    costs = measured_costs(journal, SCALE, None, "interp")
    assert costs["plot"] == 2.0


def test_measured_costs_ignores_cache_hits(tmp_path):
    """Store/journal hits take milliseconds and say nothing about the
    benchmark's true cost; only real simulations train the model."""
    journal = RunJournal(tmp_path)
    _record(journal, "plot", 5.0)
    _record(journal, "plot", 0.001, source="store")
    _record(journal, "pgp", 0.002, source="journal")
    costs = measured_costs(journal, SCALE, None, "interp")
    assert costs["plot"] == 5.0
    assert "pgp" not in costs


def test_measured_costs_keys_on_run_parameters(tmp_path):
    journal = RunJournal(tmp_path)
    _record(journal, "plot", 5.0)
    assert measured_costs(journal, 0.5, None, "interp") == {}
    assert measured_costs(journal, SCALE, None, "superblock") == {}


def test_partition_follows_measured_costs():
    """A benchmark measured 100x heavier gets a bin to itself even when
    fuel estimates would have balanced the names differently."""
    names = ["plot", "compress", "pgp"]
    costs = {"plot": 100.0, "compress": 1.0, "pgp": 1.0}
    bins = partition_selection(names, 2, SCALE, costs=costs)
    assert ["plot"] in [sorted(b) for b in bins]
    assert sorted(n for b in bins for n in b) == sorted(names)


# -- end-to-end recovery ----------------------------------------------------


def _store_bytes(root):
    """Artifact filename -> bytes.  The journal (timestamps), lease
    state and checkpoints are operational, not results."""
    root = Path(root)
    return {
        p.name: p.read_bytes()
        for p in sorted(root.iterdir())
        if p.is_file() and p.name != "journal.jsonl"
    }


@pytest.fixture(scope="module")
def baseline_store(tmp_path_factory):
    """One unsharded smoke-set run to byte-compare every recovery
    scenario against."""
    root = tmp_path_factory.mktemp("baseline")
    assert main(
        ["experiment", "--set", "smoke", "--cache", str(root),
         "--scale", str(SCALE)]
    ) == 0
    return root


def _supervise(store, tmp, **kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("checkpoint_every_events", 1_000)
    supervisor = ShardSupervisor(
        list(SMOKE), workers=2, store_root=store, **kwargs
    )
    return supervisor, supervisor.run()


@pytest.mark.slow
@pytest.mark.faults
def test_killed_shard_recovers_byte_identical(
    tmp_path, baseline_store
):
    """SIGKILL shard 1 mid-benchmark: the supervisor restarts it, the
    journal diff scopes the rerun, and the merged store is
    byte-identical to the unsharded baseline."""
    store = tmp_path / "store"
    plan = FaultPlan(
        shard_kill={"1": 4_000}, state_dir=str(tmp_path / "state")
    )
    (tmp_path / "state").mkdir()
    with plan.installed():
        supervisor, report = _supervise(store, tmp_path)
    assert report.remaining == []
    assert report.failed == {}
    assert not report.interrupted and not report.exhausted
    assert supervisor.stats.restarts >= 1
    assert len(report.shard_events) >= 1
    assert report.shard_events[0]["code"] == "shard_lost"
    assert _store_bytes(store) == _store_bytes(baseline_store)


@pytest.mark.slow
@pytest.mark.faults
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    slot=st.integers(min_value=1, max_value=2),
    events=st.sampled_from([500, 4_000, 12_000]),
)
def test_kill_any_worker_anywhere_is_byte_identical(
    tmp_path_factory, baseline_store, slot, events
):
    """The property behind the design: no (slot, kill point) produces a
    store that differs from the unsharded baseline by one byte."""
    tmp = tmp_path_factory.mktemp(f"kill-{slot}-{events}")
    store = tmp / "store"
    plan = FaultPlan(
        shard_kill={str(slot): events}, state_dir=str(tmp / "state")
    )
    (tmp / "state").mkdir()
    with plan.installed():
        _, report = _supervise(store, tmp)
    assert report.remaining == []
    assert _store_bytes(store) == _store_bytes(baseline_store)


@pytest.mark.slow
@pytest.mark.faults
def test_hung_shard_is_recycled_via_lease_expiry(
    tmp_path, baseline_store
):
    """A wedged-but-alive worker never crashes and never heartbeats
    past its entry; only the lease clock can catch it.  With no restart
    budget its work is reassigned to the surviving slot."""
    store = tmp_path / "store"
    plan = FaultPlan(shard_hang=(1,), hang_seconds=120.0)
    started = time.monotonic()
    with plan.installed():
        supervisor, report = _supervise(
            store, tmp_path, lease_timeout=1.5, max_restarts=0
        )
    assert time.monotonic() - started < 60.0  # not hang_seconds
    assert supervisor.stats.lease_expiries >= 1
    assert supervisor.stats.shards_lost >= 1
    assert report.remaining == []
    assert not report.exhausted
    assert _store_bytes(store) == _store_bytes(baseline_store)


@pytest.mark.slow
@pytest.mark.faults
def test_lease_stalled_worker_counts_as_straggler(tmp_path):
    """A lease_stall worker computes fine but never beats: the
    supervisor must recycle it (expiry) yet its completed work — journal
    and artifacts — survives into the final result."""
    store = tmp_path / "store"
    plan = FaultPlan(lease_stall=(1, 2))
    with plan.installed():
        supervisor, report = _supervise(
            store, tmp_path, lease_timeout=2.0
        )
    assert report.remaining == []
    assert report.failed == {}


@pytest.mark.slow
@pytest.mark.faults
def test_exhausted_restart_budget_is_an_honest_failure(tmp_path):
    """Kill the only slot more times than it may restart with no
    surviving slot to reassign to: the report says exhausted and names
    the lost benchmarks instead of pretending."""
    store = tmp_path / "store"
    # every incarnation of slot 1 dies at 500 events: marker files are
    # per-incarnation only for restarts, so re-arm by clearing state
    plan = FaultPlan(
        shard_kill={"1": 500, "2": 500},
        state_dir=str(tmp_path / "state"),
    )
    (tmp_path / "state").mkdir()

    class Rearm(threading.Thread):
        def __init__(self):
            super().__init__(daemon=True)
            self.stop = threading.Event()

        def run(self):
            while not self.stop.wait(0.05):
                for marker in (tmp_path / "state").glob("shard-kill-*"):
                    marker.unlink(missing_ok=True)

    rearm = Rearm()
    rearm.start()
    try:
        with plan.installed():
            supervisor = ShardSupervisor(
                list(SMOKE),
                workers=2,
                store_root=store,
                scale=SCALE,
                checkpoint_every_events=100,
                max_restarts=1,
                restart_backoff=0.05,
            )
            report = supervisor.run()
    finally:
        rearm.stop.set()
        rearm.join(timeout=5.0)
    assert report.exhausted
    assert report.lost  # the unfinished names are enumerated
    assert supervisor.stats.shards_lost == 2


# -- SIGTERM drain ----------------------------------------------------------


@pytest.mark.slow
@pytest.mark.faults
def test_drain_stops_cleanly_and_resume_completes(
    tmp_path, baseline_store
):
    """Drain mid-run: the report is honest (completed + remaining),
    completed work is merged and durable, and a rerun of the same
    supervisor finishes the suite byte-identically."""
    store = tmp_path / "store"
    # slow the first pass down enough to drain mid-flight
    plan = FaultPlan(shard_hang=(1,), hang_seconds=2.0)
    trigger = threading.Timer(0.5, interrupt.request_drain)
    trigger.start()
    try:
        with plan.installed():
            _, report = _supervise(store, tmp_path)
    finally:
        trigger.cancel()
        interrupt.reset_drain()
    assert report.interrupted
    assert sorted(report.completed + report.remaining) == sorted(SMOKE)
    # rerun (no faults, no drain): picks up exactly the remainder
    _, second = _supervise(store, tmp_path)
    assert second.remaining == []
    assert not second.interrupted
    assert _store_bytes(store) == _store_bytes(baseline_store)


# -- CLI --------------------------------------------------------------------


@pytest.mark.slow
def test_supervise_cli_emits_v9_envelope(tmp_path, capsys):
    store = tmp_path / "store"
    rc = main(
        ["supervise", "--set", "smoke", "--cache", str(store),
         "--workers", "2", "--scale", str(SCALE), "--json"]
    )
    assert rc == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema_version"] == 9
    assert document["command"] == "supervise"
    assert document["params"]["workers"] == 2
    results = document["results"]
    assert sorted(results["completed"]) == sorted(SMOKE)
    assert results["remaining"] == []
    assert results["exhausted"] is False
    sup = results["supervisor"]
    assert sup["workers"] == 2
    assert sup["cost_model"] in ("fuel", "measured")
    assert results["merge"]["journal_skipped"] == 0


def test_supervise_cli_rejects_missing_selection(capsys, tmp_path):
    rc = main(["supervise", "--cache", str(tmp_path / "s")])
    assert rc == 2
    assert "select" in capsys.readouterr().err


def test_supervisor_rejects_bad_worker_counts(tmp_path):
    with pytest.raises(ValueError):
        ShardSupervisor(["plot"], workers=0, store_root=tmp_path)
    with pytest.raises(ValueError):
        ShardSupervisor(
            ["plot"], workers=1, store_root=tmp_path, max_restarts=-1
        )
