"""Benchmark-set registry and selector algebra (repro.workloads.registry).

Property tests pin down the registry's contract: selector resolution is
deterministic and (for union-only expressions) order-independent, every
set member resolves, the legacy suite tuples are exact views over the
registry, and unknown names produce the typed exit-2 errors with a
near-miss suggestion.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SelectionError, UnknownBenchmark, UnknownSet
from repro.workloads import suite
from repro.workloads.registry import (
    benchmark_sets,
    estimated_cost,
    known_benchmarks,
    members,
    resolve_benchmark,
    resolve_selection,
)

SET_NAMES = sorted(benchmark_sets())

names_or_sets = st.lists(
    st.sampled_from(list(known_benchmarks()) + SET_NAMES),
    min_size=1,
    max_size=6,
)


# -- registry shape ----------------------------------------------------------


def test_every_set_member_is_a_known_benchmark():
    known = set(known_benchmarks())
    for s in benchmark_sets().values():
        assert set(s.members) <= known
        assert len(s.members) == len(set(s.members))  # no duplicates


def test_legacy_tuples_are_registry_views():
    assert suite.TABLE2_BENCHMARKS == members("table2")
    assert suite.TABLE34_BENCHMARKS == members("table34")
    assert suite.FIGURE_BENCHMARKS == members("figures")
    assert suite.ALL_BENCHMARKS == members("all")


def test_all_set_is_the_union_in_canonical_order():
    assert members("all") == known_benchmarks()


def test_paper_sets_partition_table1():
    joined = set(members("paper6")) | set(members("unix"))
    assert not set(members("paper6")) & set(members("unix"))
    assert "compress" in joined and "tex" in joined


def test_smoke_set_declares_a_fast_scale():
    assert benchmark_sets()["smoke"].default_scale == pytest.approx(0.05)


def test_estimated_cost_is_positive_and_scales():
    for name in members("smoke"):
        assert estimated_cost(name, 0.05) > 0
        assert estimated_cost(name, 1.0) >= estimated_cost(name, 0.05)


# -- selector algebra --------------------------------------------------------


def test_set_algebra_difference():
    selection = resolve_selection("unix+paper6-gcc")
    assert "gcc" not in selection.names
    assert set(selection.names) == (
        set(members("unix")) | set(members("paper6"))
    ) - {"gcc"}


def test_all_minus_variants():
    selection = resolve_selection("all-variants")
    assert set(selection.names) == set(members("all")) - set(
        members("variants")
    )


def test_comma_is_union():
    assert resolve_selection("plot,pgp").names == resolve_selection(
        "pgp+plot"
    ).names


def test_glob_terms():
    assert resolve_selection("perl_*").names == ("perl_a", "perl_b")
    assert resolve_selection("ss_?").names == ("ss_a", "ss_b")


def test_sequence_form_unions():
    cli_form = resolve_selection(["plot", "pgp", "unix"])
    assert cli_form.names == resolve_selection("plot+pgp+unix").names


def test_difference_applies_left_to_right():
    # removing then re-adding keeps the benchmark
    assert "gcc" in resolve_selection("paper6-gcc+gcc").names
    assert "gcc" not in resolve_selection("paper6+gcc-gcc").names


def test_selection_carries_set_defaults():
    selection = resolve_selection("smoke")
    assert selection.default_scale == pytest.approx(0.05)
    assert selection.sets == ("smoke",)
    # disagreeing sets -> no agreed default
    assert resolve_selection("smoke+unix").default_scale is None
    # pure name selections reference no set
    assert resolve_selection("plot").sets == ()


@settings(max_examples=60, deadline=None)
@given(terms=names_or_sets)
def test_union_resolution_is_deterministic_and_order_independent(terms):
    forward = resolve_selection(terms)
    backward = resolve_selection(list(reversed(terms)))
    again = resolve_selection(terms)
    assert forward.names == backward.names == again.names
    # canonical order: a subsequence of known_benchmarks()
    rank = {n: i for i, n in enumerate(known_benchmarks())}
    positions = [rank[n] for n in forward.names]
    assert positions == sorted(positions)
    assert len(set(forward.names)) == len(forward.names)


@settings(max_examples=60, deadline=None)
@given(terms=names_or_sets)
def test_resolution_matches_naive_set_union(terms):
    expected = set()
    for term in terms:
        expected |= set(
            members(term) if term in benchmark_sets() else (term,)
        )
    assert set(resolve_selection(terms).names) == expected


# -- typed errors ------------------------------------------------------------


def test_unknown_benchmark_suggests_near_miss():
    with pytest.raises(UnknownBenchmark) as excinfo:
        resolve_selection("compresss")
    assert excinfo.value.context["suggestion"] == "compress"
    assert excinfo.value.code == "unknown_benchmark"


def test_unknown_set_suggests_near_miss():
    with pytest.raises(UnknownSet) as excinfo:
        members("tabl2")
    assert excinfo.value.context["suggestion"] == "table2"
    with pytest.raises(UnknownSet):
        resolve_selection("unixx")


def test_glob_matching_nothing_is_typed():
    with pytest.raises(UnknownBenchmark):
        resolve_selection("doom_*")


def test_empty_selection_is_typed():
    with pytest.raises(SelectionError):
        resolve_selection("")
    with pytest.raises(SelectionError):
        resolve_selection("plot-plot")


def test_resolve_benchmark_accepts_aliases_rejects_unknown():
    assert resolve_benchmark("perl") == "perl"
    assert resolve_benchmark("ss_b") == "ss_b"
    with pytest.raises(UnknownBenchmark):
        resolve_benchmark("doom")
