"""Table/figure experiment tests at test scale.

These check structure and internal consistency (row counts, value ranges,
ordering invariants) rather than the full-scale paper shapes, which the
benchmark harness regenerates.
"""

import pytest

from conftest import TEST_THRESHOLD
from repro.eval.figures import (
    average_improvement,
    format_figure,
    run_figure3,
    run_figure4,
)
from repro.eval.tables import (
    format_sizing_table,
    format_table1,
    format_table2,
    reduction_summary,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

BENCH_SUBSET = ["compress", "plot"]


def test_table1_rows(runner):
    rows = run_table1(runner, benchmarks=BENCH_SUBSET)
    assert [r.benchmark for r in rows] == BENCH_SUBSET
    for row in rows:
        assert row.analyzed_dynamic <= row.total_dynamic
        assert row.percent_analyzed >= 99.0  # cutoff targets 99.9%
        assert row.analyzed_static <= row.static_branches
    text = format_table1(rows)
    assert "Table 1" in text and "compress" in text


def test_table2_rows(runner):
    rows = run_table2(
        runner, benchmarks=BENCH_SUBSET, threshold=TEST_THRESHOLD
    )
    for row in rows:
        assert row.total_sets >= 1
        assert 1 <= row.average_static_size <= row.largest_size
        assert row.largest_size <= row.static_branches
    text = format_table2(rows)
    assert "working sets" in text


def test_table3_sizes_below_baseline_table(runner):
    rows = run_table3(
        runner, benchmarks=BENCH_SUBSET, threshold=TEST_THRESHOLD
    )
    for row in rows:
        assert 1 <= row.required_size < 1024
        if row.baseline_cost > 0:
            assert row.achieved_cost < row.baseline_cost
        else:
            assert row.achieved_cost == 0
    text = format_sizing_table(rows, "Table 3", "(working sets only)")
    assert "Table 3" in text


def test_table4_requires_no_more_than_table3(runner):
    t3 = run_table3(runner, benchmarks=BENCH_SUBSET,
                    threshold=TEST_THRESHOLD)
    t4 = run_table4(runner, benchmarks=BENCH_SUBSET,
                    threshold=TEST_THRESHOLD)
    for row3, row4 in zip(t3, t4):
        assert row4.benchmark == row3.benchmark
        # classification can only relax the colouring problem
        assert row4.required_size <= row3.required_size + 2


def test_reduction_summary_fractions(runner):
    t3 = run_table3(runner, benchmarks=BENCH_SUBSET,
                    threshold=TEST_THRESHOLD)
    t4 = run_table4(runner, benchmarks=BENCH_SUBSET,
                    threshold=TEST_THRESHOLD)
    r3, r4 = reduction_summary(t3, t4)
    assert 0.0 < r3 <= 1.0
    assert r4 >= r3 - 0.05


@pytest.fixture(scope="module")
def figure3_rows(runner):
    return run_figure3(
        runner, benchmarks=BENCH_SUBSET, threshold=TEST_THRESHOLD,
        sizes=(16, 128, 1024),
    )


def test_figure3_rates_are_probabilities(figure3_rows):
    for row in figure3_rows:
        for rate in list(row.allocated.values()) + [
            row.conventional, row.interference_free
        ]:
            assert 0.0 <= rate <= 1.0


def test_figure3_allocated_1024_close_to_interference_free(figure3_rows):
    for row in figure3_rows:
        assert row.allocated[1024] <= row.interference_free + 0.01


def test_figure3_bigger_allocated_tables_do_not_hurt(figure3_rows):
    for row in figure3_rows:
        assert row.allocated[1024] <= row.allocated[16] + 0.005


def test_figure_format_and_improvement(figure3_rows):
    text = format_figure(figure3_rows, "Figure 3", "test")
    assert "Figure 3" in text and "alloc@1024" in text
    improvement = average_improvement(figure3_rows)
    assert -0.5 < improvement < 1.0
    assert average_improvement([]) == 0.0


def test_figure4_classified_variant(runner):
    rows = run_figure4(
        runner, benchmarks=["compress"], threshold=TEST_THRESHOLD,
        sizes=(16, 128),
    )
    (row,) = rows
    assert set(row.allocated) == {16, 128}
    assert 0.0 <= row.allocated[128] <= 1.0
