"""Focused edge-case coverage across layers."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.lexer import AsmSyntaxError
from repro.isa.program import DATA_BASE
from repro.sim.machine import Simulator
from repro.sim.memory import PAGE_SIZE, Memory


# -- assembler edges -----------------------------------------------------------


def test_interleaved_text_and_data_segments():
    program = assemble(
        """
        .data
        a: .word 1
        .text
        main:
            la t0, a
            lw t1, 0(t0)
        .data
        b: .word 2
        .text
            la t0, b
            lw t2, 0(t0)
            halt
        """
    )
    sim = Simulator(program)
    sim.run(allow_truncation=False)
    from repro.isa.registers import register_number as rn

    assert sim.state.read(rn("t1")) == 1
    assert sim.state.read(rn("t2")) == 2
    assert program.symbols["b"] == DATA_BASE + 4


def test_empty_program_assembles():
    program = assemble("")
    assert len(program) == 0


def test_label_only_program():
    program = assemble("main:\nend:\n")
    assert program.symbols["main"] == program.symbols["end"]


def test_branch_to_self_offset_zero():
    program = assemble("main: beq zero, zero, main\n")
    assert program.instructions[0].imm == 0


def test_skip_zero_is_noop():
    program = assemble("main: halt\n.skip 0\n")
    assert len(program) == 1


def test_negative_skip_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(".skip -1\n")


def test_li_int32_boundaries():
    for value in (-(1 << 31), (1 << 31) - 1, 0, -1, 8191, -8192, 8192):
        program = assemble(f"main: li t0, {value}\nhalt\n")
        sim = Simulator(program)
        sim.run(allow_truncation=False)
        expected = value - (1 << 32) if value >= 1 << 31 else value
        assert sim.state.read(5) == expected, value


def test_li_out_of_range_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("main: li t0, 4294967296\n")


def test_character_literal_operand():
    program = assemble("main: li t0, 'A'\nhalt\n")
    sim = Simulator(program)
    sim.run(allow_truncation=False)
    assert sim.state.read(5) == 65


# -- memory edges ---------------------------------------------------------------


def test_word_write_at_exact_page_boundary():
    memory = Memory()
    memory.store_word(PAGE_SIZE - 4, 0x7FEEDDCC)
    assert memory.load_word(PAGE_SIZE - 4) == 0x7FEEDDCC
    assert memory.resident_pages == 1


def test_bulk_store_across_pages():
    memory = Memory()
    payload = bytes(range(1, 9))
    memory.store_bytes(PAGE_SIZE - 3, payload)
    assert memory.load_bytes(PAGE_SIZE - 3, 8) == payload
    assert memory.resident_pages == 2


def test_wraparound_word_at_top_of_address_space():
    memory = Memory()
    memory.store_word(0xFFFF_FFFE, 0x11223344)
    # bytes wrap to addresses 0xFFFFFFFE, 0xFFFFFFFF, 0x0, 0x1
    assert memory.load_byte(0) == 0x22
    assert memory.load_byte(1) == 0x11


# -- executor edges --------------------------------------------------------------


def test_jalr_masks_low_bits():
    program = assemble(
        """
        main:
            la t0, dest
            addi t0, t0, 2      # misaligned on purpose
            jalr t1, t0, 0
        dest:
            li t2, 9
        """
    )
    # dest+2 masked (&~3) back to dest... but dest+2 & ~3 == dest only if
    # dest % 4 == 0, which always holds; the +2 is dropped
    sim = Simulator(program)
    with pytest.raises(Exception):
        # falls off the end after executing dest (no halt): SimulationError
        sim.run(allow_truncation=False)
    assert sim.state.read(7) == 9  # t2 written -> landed on dest


def test_final_pc_points_past_the_exit_ecall():
    program = assemble("main: li a0, 0\nli a1, 0\necall\n")
    sim = Simulator(program)
    sim.run(allow_truncation=False)
    # the ecall (third instruction) retired; pc advanced past it
    assert sim.state.pc == program.text_base + 3 * 4


def test_deep_recursion_uses_stack_correctly():
    # recursive countdown 200 deep: validates sp discipline end to end
    program = assemble(
        """
        main:
            li a0, 200
            call rec
            mv a1, a0
            li a0, 1
            ecall
            li a0, 0
            li a1, 0
            ecall
        rec:
            addi sp, sp, -8
            sw ra, 0(sp)
            sw s0, 4(sp)
            mv s0, a0
            beqz s0, rec_base
            addi a0, s0, -1
            call rec
            add a0, a0, s0
            j rec_out
        rec_base:
            li a0, 0
        rec_out:
            lw ra, 0(sp)
            lw s0, 4(sp)
            addi sp, sp, 8
            ret
        """
    )
    sim = Simulator(program)
    result = sim.run(allow_truncation=False)
    assert result.output == b"20100\n"  # sum 1..200


def test_zero_length_input_syscalls():
    program = assemble(
        """
        main:
            li a0, 4
            ecall
            mv t0, a0
            li a0, 3
            ecall
            mv t1, a0
            halt
        """
    )
    sim = Simulator(program, input_data=b"")
    sim.run(allow_truncation=False)
    assert sim.state.read(5) == 0    # size 0
    assert sim.state.read(6) == -1   # immediate EOF


# -- analysis edges -----------------------------------------------------------------


def test_profile_of_empty_trace():
    from repro.profiling.interleave import profile_trace
    from repro.trace.events import BranchTrace

    profile = profile_trace(BranchTrace.from_events([]))
    assert profile.static_branch_count == 0
    assert profile.pairs == {}


def test_single_branch_workload_pipeline():
    from repro.allocation.allocator import BranchAllocator
    from repro.allocation.sizing import required_bht_size
    from repro.profiling.interleave import InterleaveAnalyzer

    analyzer = InterleaveAnalyzer()
    for _ in range(1000):
        analyzer.observe(0x1000, True)
    profile = analyzer.finish()
    allocator = BranchAllocator(profile)
    sizing = required_bht_size(allocator, baseline_cost=0, min_size=1)
    assert sizing.required_size == 1


def test_conflict_graph_with_two_branch_cycle():
    from repro.analysis.conflict_graph import build_conflict_graph
    from repro.analysis.working_sets import partition_working_sets
    from repro.profiling.interleave import InterleaveAnalyzer

    analyzer = InterleaveAnalyzer()
    for _ in range(200):
        analyzer.observe(0x10)
        analyzer.observe(0x20)
    graph = build_conflict_graph(analyzer.finish(), threshold=100)
    partition = partition_working_sets(graph)
    assert partition.count == 1
    assert partition.largest_size == 2
