"""Checkpoint/resume: crash-safe snapshots must restore bit-exactly.

Three layers are exercised:

* the :class:`~repro.checkpoint.CheckpointStore` file format — atomic
  writes, retention, corruption quarantine and fallback;
* the sliced simulation runner — a run killed at an arbitrary slice
  boundary and resumed must produce artifacts byte-identical to an
  uninterrupted run (the property test draws the kill point);
* the :class:`~repro.eval.engine.ExecutionEngine` — retries restore the
  dead attempt's checkpoint, the run journal lets ``--resume`` skip
  finished benchmarks, and both are visible in the engine stats.

The simulation-heavy tests are marked ``faults`` alongside the rest of
the injection suite; the store/journal unit tests run everywhere.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointConfig,
    CheckpointStore,
    DEFAULT_SLICE_INSTRUCTIONS,
    MIN_SLICE_INSTRUCTIONS,
    RunJournal,
    prune_directory,
    run_simulation,
    slice_for_cadence,
)
from repro.errors import CheckpointCorrupt
from repro.eval.engine import CHECKPOINT_SUBDIR, ExecutionEngine
from repro.eval.faults import FaultPlan, InjectedFault
from repro.pipeline.bus import BranchEventBus
from repro.pipeline.consumers import InterleaveConsumer, TraceBuilder
from repro.trace.io import save_trace
from repro.workloads import build_workload, get_benchmark, run_workload

#: Small enough to keep each simulation around a second.
SCALE = 0.05

#: Fast retry backoff so retry tests don't sleep for real.
BACKOFF = 0.01


# -- checkpoint store: format, retention, corruption -------------------------


def make_store(tmp_path, **kwargs):
    return CheckpointStore(tmp_path / "checkpoints", **kwargs)


def test_put_load_round_trip(tmp_path):
    store = make_store(tmp_path)
    payload = {"sim": {"pc": 4096, "pages": {0: b"\x01" * 16}}, "n": [1, 2]}
    store.put("plot-s1-abcd", 1, payload, meta={"events": 500})
    loaded = store.load_latest("plot-s1-abcd")
    assert loaded is not None
    header, restored = loaded
    assert header["stem"] == "plot-s1-abcd"
    assert header["seq"] == 1
    assert header["events"] == 500  # meta keys flatten into the header
    assert restored == payload
    assert not store.corrupt_events


def test_retention_keeps_newest_sequences(tmp_path):
    store = make_store(tmp_path, keep=2)
    for seq in range(1, 6):
        store.put("stem", seq, {"seq": seq})
    assert store.sequences("stem") == [4, 5]
    _, payload = store.load_latest("stem")
    assert payload == {"seq": 5}


def test_no_stage_files_left_behind(tmp_path):
    store = make_store(tmp_path)
    store.put("stem", 1, {"x": 1})
    leftovers = [p.name for p in store.root.iterdir() if ".stage-" in p.name]
    assert leftovers == []


def test_corrupt_latest_falls_back_to_previous(tmp_path):
    store = make_store(tmp_path)
    store.put("stem", 1, {"seq": 1})
    store.put("stem", 2, {"seq": 2})
    latest = store.path("stem", 2)
    raw = bytearray(latest.read_bytes())
    raw[-8:] = b"\x00" * 8  # damage the pickle payload
    latest.write_bytes(bytes(raw))

    loaded = store.load_latest("stem")
    assert loaded is not None
    header, payload = loaded
    assert header["seq"] == 1 and payload == {"seq": 1}
    # the damaged file was quarantined, not deleted, and the event recorded
    assert not latest.exists()
    quarantined = list((store.root / store.QUARANTINE_DIR).iterdir())
    assert [p.name for p in quarantined] == [latest.name]
    assert len(store.corrupt_events) == 1
    assert isinstance(store.corrupt_events[0], CheckpointCorrupt)


def test_truncated_checkpoint_falls_back(tmp_path):
    store = make_store(tmp_path)
    store.put("stem", 1, {"seq": 1})
    store.put("stem", 2, {"seq": 2})
    latest = store.path("stem", 2)
    raw = latest.read_bytes()
    latest.write_bytes(raw[: len(raw) // 2])
    _, payload = store.load_latest("stem")
    assert payload == {"seq": 1}


def test_all_checkpoints_corrupt_returns_none(tmp_path):
    store = make_store(tmp_path)
    store.put("stem", 1, {"seq": 1})
    store.put("stem", 2, {"seq": 2})
    for seq in (1, 2):
        store.path("stem", seq).write_bytes(b"garbage")
    assert store.load_latest("stem") is None
    assert len(store.corrupt_events) == 2
    assert store.sequences("stem") == []


def test_header_stem_mismatch_is_corruption(tmp_path):
    """A checkpoint renamed onto another stem must not restore."""
    store = make_store(tmp_path)
    store.put("other", 1, {"seq": 1})
    store.path("other", 1).rename(store.path("stem", 1))
    assert store.load_latest("stem") is None
    assert len(store.corrupt_events) == 1


def test_magic_prefix_is_stable(tmp_path):
    store = make_store(tmp_path)
    store.put("stem", 1, {"x": 1})
    raw = store.path("stem", 1).read_bytes()
    assert raw.startswith(CHECKPOINT_MAGIC)
    # header line is plain JSON: inspectable without unpickling anything
    header = json.loads(raw[len(CHECKPOINT_MAGIC):].split(b"\n", 1)[0])
    assert header["payload_sha256"]
    assert header["payload_bytes"] > 0


def test_clear_removes_only_that_stem(tmp_path):
    store = make_store(tmp_path)
    store.put("a", 1, {"x": 1})
    store.put("b", 1, {"x": 2})
    store.clear("a")
    assert store.sequences("a") == []
    assert store.sequences("b") == [1]


def test_prune_directory_keeps_newest(tmp_path):
    root = tmp_path / "quarantine"
    root.mkdir()
    for i in range(20):
        (root / f"f{i:02d}").write_bytes(b"x")
    pruned = prune_directory(root, keep=5)
    assert pruned == 15
    assert len(list(root.iterdir())) == 5
    assert prune_directory(tmp_path / "missing", keep=5) == 0


def test_quarantine_is_bounded(tmp_path):
    store = make_store(tmp_path)
    for i in range(store.QUARANTINE_KEEP + 8):
        store.put("stem", i, {"seq": i}, )
        store.path("stem", i).write_bytes(b"garbage")
        assert store.load_latest("stem") is None
    quarantine = store.root / store.QUARANTINE_DIR
    assert len(list(quarantine.iterdir())) <= store.QUARANTINE_KEEP


def test_slice_for_cadence_bounds():
    assert slice_for_cadence(1) == MIN_SLICE_INSTRUCTIONS
    assert slice_for_cadence(2000) == 8000
    assert slice_for_cadence(10**9) == DEFAULT_SLICE_INSTRUCTIONS
    config = CheckpointConfig(
        store=CheckpointStore.__new__(CheckpointStore), stem="s",
        every_events=2000,
    )
    assert config.slice_instructions == slice_for_cadence(2000)


# -- run journal -------------------------------------------------------------


def test_journal_records_round_trip(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record_completed("plot", "a" * 64, scale=0.05, trace_limit=0)
    journal.record_completed("pgp", "b" * 64, scale=0.05, trace_limit=0)
    assert journal.completed(scale=0.05, trace_limit=0) == {
        "plot": "a" * 64, "pgp": "b" * 64,
    }


def test_journal_latest_record_wins(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record_completed("plot", "a" * 64, scale=0.05, trace_limit=0)
    journal.record_failed("plot", scale=0.05, trace_limit=0,
                          error={"code": "job_failed"})
    assert journal.completed(scale=0.05, trace_limit=0) == {}
    journal.record_completed("plot", "c" * 64, scale=0.05, trace_limit=0)
    assert journal.completed(scale=0.05, trace_limit=0) == {"plot": "c" * 64}


def test_journal_ignores_other_parameters(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record_completed("plot", "a" * 64, scale=0.05, trace_limit=0)
    journal.record_failed("plot", scale=0.30, trace_limit=0,
                          error={"code": "job_failed"})
    # the failure at another scale neither completes nor invalidates
    assert journal.completed(scale=0.30, trace_limit=0) == {}
    assert journal.completed(scale=0.05, trace_limit=0) == {"plot": "a" * 64}


def test_journal_tolerates_torn_lines(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record_completed("plot", "a" * 64, scale=0.05, trace_limit=0)
    with journal.path.open("a") as handle:
        handle.write('{"benchmark": "pgp", "status": "comp')  # torn write
    journal.record_completed("compress", "b" * 64, scale=0.05, trace_limit=0)
    assert journal.completed(scale=0.05, trace_limit=0) == {
        "plot": "a" * 64, "compress": "b" * 64,
    }


# -- sliced runner: kill anywhere, resume bit-exactly ------------------------


def _fingerprint(tmp_path, tag, profiler, builder, bus):
    """Byte-level fingerprint of everything a job would persist."""
    trace_path = tmp_path / f"{tag}.trace.npz"
    save_trace(builder.result, trace_path)
    profile = profiler.result
    profile_doc = json.dumps(
        {
            "branches": {
                pc: [s.executions, s.taken]
                for pc, s in sorted(profile.branches.items())
            },
            "pairs": {
                f"{a}:{b}": count
                for (a, b), count in sorted(profile.pairs.items())
            },
        },
        sort_keys=True,
    )
    stats = bus.stats
    return (
        trace_path.read_bytes(),
        profile_doc,
        (stats.events, stats.delivered, stats.chunk_flushes),
    )


def _run_to_completion(
    built, config=None, fault_plan=None, benchmark="", backend=None
):
    # fixed labels: the fingerprint embeds them, and fault plans key on
    # the *benchmark* argument independently of the display label
    profiler = InterleaveConsumer(label="plot")
    builder = TraceBuilder(label="plot")
    bus = BranchEventBus([profiler, builder])
    outcome = run_simulation(
        built, bus, config=config, fault_plan=fault_plan,
        benchmark=benchmark, backend=backend,
    )
    bus.finish()
    return outcome, profiler, builder, bus


@pytest.fixture(scope="module")
def built_plot():
    return build_workload(get_benchmark("plot", scale=SCALE))


@pytest.fixture(scope="module")
def plot_baseline(built_plot, tmp_path_factory):
    """Uninterrupted run of plot: the ground truth for byte-identity."""
    tmp = tmp_path_factory.mktemp("baseline")
    outcome, profiler, builder, bus = _run_to_completion(built_plot)
    return (
        _fingerprint(tmp, "base", profiler, builder, bus),
        bus.stats.events,
    )


@pytest.mark.faults
def test_sliced_run_matches_unsliced(built_plot, plot_baseline, tmp_path):
    """Checkpointing itself must not perturb results."""
    baseline, _ = plot_baseline
    config = CheckpointConfig(
        store=make_store(tmp_path), stem="plot-stem", every_events=2_000,
    )
    outcome, profiler, builder, bus = _run_to_completion(
        built_plot, config=config,
    )
    assert outcome.checkpoints_written > 0
    assert not outcome.resumed_from_checkpoint
    assert _fingerprint(tmp_path, "sliced", profiler, builder, bus) == baseline


@pytest.mark.faults
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(kill_fraction=st.integers(min_value=5, max_value=95))
def test_kill_anywhere_resume_is_byte_identical(
    built_plot, plot_baseline, tmp_path, kill_fraction
):
    """Interrupt at an arbitrary slice boundary; the resumed run must
    reproduce the uninterrupted artifacts byte for byte — warmup state,
    staged chunks and consumer internals all restore exactly."""
    baseline, total_events = plot_baseline
    threshold = max(1, total_events * kill_fraction // 100)
    workdir = tmp_path / f"kill-{kill_fraction}"
    workdir.mkdir()
    store = CheckpointStore(workdir / "checkpoints")
    config = CheckpointConfig(
        store=store, stem="plot-stem", every_events=1_000,
    )
    plan = FaultPlan(
        worker_kill={"plot": threshold}, state_dir=str(workdir / "state"),
    )
    with pytest.raises(InjectedFault):
        _run_to_completion(
            built_plot, config=config, fault_plan=plan, benchmark="plot",
        )
    # retry: the kill-once marker is claimed, so the plan stays inert
    outcome, profiler, builder, bus = _run_to_completion(
        built_plot, config=config, fault_plan=plan, benchmark="plot",
    )
    if threshold > config.every_events:
        assert outcome.resumed_from_checkpoint
        assert outcome.resumed_events > 0
    assert _fingerprint(workdir, "resumed", profiler, builder, bus) == baseline


@pytest.mark.faults
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(kill_fraction=st.integers(min_value=5, max_value=95))
def test_kill_anywhere_superblock_matches_interp_baseline(
    built_plot, plot_baseline, tmp_path, kill_fraction
):
    """Kill-anywhere under the superblock backend: the resumed compiled
    run must reproduce the *interpreter's* uninterrupted artifacts byte
    for byte — checkpoints restore mid-trace PCs onto the fallback path
    and the compiled regions take over from the next trace head."""
    baseline, total_events = plot_baseline
    threshold = max(1, total_events * kill_fraction // 100)
    workdir = tmp_path / f"sbkill-{kill_fraction}"
    workdir.mkdir()
    store = CheckpointStore(workdir / "checkpoints")
    config = CheckpointConfig(
        store=store, stem="plot-stem", every_events=1_000,
    )
    plan = FaultPlan(
        worker_kill={"plot": threshold}, state_dir=str(workdir / "state"),
    )
    with pytest.raises(InjectedFault):
        _run_to_completion(
            built_plot, config=config, fault_plan=plan, benchmark="plot",
            backend="superblock",
        )
    outcome, profiler, builder, bus = _run_to_completion(
        built_plot, config=config, fault_plan=plan, benchmark="plot",
        backend="superblock",
    )
    if threshold > config.every_events:
        assert outcome.resumed_from_checkpoint
    assert _fingerprint(workdir, "sb", profiler, builder, bus) == baseline


@pytest.mark.faults
def test_corrupt_checkpoint_falls_back_then_cold_starts(
    built_plot, plot_baseline, tmp_path
):
    """Every checkpoint damaged: the runner quarantines them all and the
    run still completes, bit-exact, from instruction zero."""
    baseline, total_events = plot_baseline
    store = make_store(tmp_path)
    config = CheckpointConfig(
        store=store, stem="plot-stem", every_events=2_000,
    )
    plan = FaultPlan(
        worker_kill={"plot": max(1, total_events // 2)},
        state_dir=str(tmp_path / "state"),
    )
    with pytest.raises(InjectedFault):
        _run_to_completion(
            built_plot, config=config, fault_plan=plan, benchmark="plot",
        )
    for seq in store.sequences("plot-stem"):
        store.path("plot-stem", seq).write_bytes(b"garbage")
    outcome, profiler, builder, bus = _run_to_completion(
        built_plot, config=config, fault_plan=plan, benchmark="plot",
    )
    assert not outcome.resumed_from_checkpoint
    assert outcome.corrupt_checkpoints > 0
    assert _fingerprint(tmp_path, "cold", profiler, builder, bus) == baseline


@pytest.mark.faults
def test_restorable_but_stale_payload_quarantines(built_plot, tmp_path):
    """A checkpoint whose payload unpickles but cannot restore (wrong
    consumer set) is quarantined and the run cold-starts."""
    store = make_store(tmp_path)
    store.put(
        "plot-stem", 1,
        {"sim": {"bogus": True}, "bus": {"staged": {}, "stats": {},
                                         "consumers": {}}},
        meta={"events": 1},
    )
    config = CheckpointConfig(
        store=store, stem="plot-stem", every_events=100_000,
    )
    outcome, _, _, _ = _run_to_completion(built_plot, config=config)
    assert not outcome.resumed_from_checkpoint
    assert outcome.corrupt_checkpoints > 0
    assert outcome.result.instructions > 0


# -- engine integration: retries resume, journal skips -----------------------


def make_engine(tmp_path, **kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("retry_backoff", BACKOFF)
    return ExecutionEngine(cache_dir=tmp_path / "cache", **kwargs)


def _artifact_bytes(cache_dir, name):
    """Every stored artifact byte for *name* (trace, profile, meta)."""
    files = {
        path.name: path.read_bytes()
        for path in cache_dir.glob(f"{name}-*")
        if path.is_file()
    }
    assert files, f"no stored artifacts for {name}"
    return files


def test_checkpoint_flags_require_cache():
    with pytest.raises(ValueError):
        ExecutionEngine(scale=SCALE, checkpoint_every_events=1_000)
    with pytest.raises(ValueError):
        ExecutionEngine(scale=SCALE, resume=True)
    with pytest.raises(ValueError):
        ExecutionEngine(
            scale=SCALE, cache_dir="/tmp/x", checkpoint_every_events=0,
        )


@pytest.mark.faults
@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_kill_resumes_and_matches_baseline(tmp_path, jobs):
    """The acceptance criterion: a worker SIGKILLed mid-chunk is retried,
    the retry restores the checkpoint (``resumed_from_checkpoint`` > 0)
    and the final artifacts are byte-identical to an undisturbed run."""
    baseline = make_engine(tmp_path / "clean")
    baseline.prefetch(["plot"])
    clean = _artifact_bytes(tmp_path / "clean" / "cache", "plot")

    plan = FaultPlan(
        worker_kill={"plot": 12_000}, state_dir=str(tmp_path / "state"),
    )
    with plan.installed():
        engine = make_engine(
            tmp_path / "faulty", jobs=jobs, retries=2,
            checkpoint_every_events=4_000,
        )
        results = engine.prefetch(["plot"])
    assert set(results) == {"plot"}
    assert engine.failures == {}
    assert engine.stats.retried == 1
    assert engine.stats.resumed_from_checkpoint == 1
    assert engine.stats.checkpoints_written > 0
    assert _artifact_bytes(tmp_path / "faulty" / "cache", "plot") == clean
    # checkpoints are cleared once the artifacts are durable
    ckpt_dir = tmp_path / "faulty" / "cache" / CHECKPOINT_SUBDIR
    assert not list(ckpt_dir.glob("*.ckpt"))


@pytest.mark.faults
def test_journal_resume_skips_completed_benchmarks(tmp_path):
    first = make_engine(tmp_path)
    first.prefetch(["plot", "pgp"])
    assert (tmp_path / "cache" / "journal.jsonl").exists()

    second = make_engine(tmp_path, resume=True)
    results = second.prefetch(["plot", "pgp"])
    assert set(results) == {"plot", "pgp"}
    assert second.stats.journal_skips == 2
    assert second.stats.simulated == 0


@pytest.mark.faults
def test_journal_resume_survives_missing_artifacts(tmp_path):
    first = make_engine(tmp_path)
    first.prefetch(["plot"])
    for stale in (tmp_path / "cache").glob("plot-*"):
        stale.unlink()

    second = make_engine(tmp_path, resume=True)
    results = second.prefetch(["plot"])
    assert set(results) == {"plot"}
    # journal said done, store said gone: the engine resimulates and the
    # skip is re-counted as honest work, not a journal hit
    assert second.stats.job_source["plot"] == "resimulated"
    assert second.stats.journal_skips == 0
    assert second.failures == {}


@pytest.mark.faults
def test_stats_surface_checkpoint_counters(tmp_path):
    plan = FaultPlan(
        worker_kill={"plot": 12_000}, state_dir=str(tmp_path / "state"),
    )
    with plan.installed():
        engine = make_engine(
            tmp_path, retries=2, checkpoint_every_events=4_000,
        )
        engine.prefetch(["plot"])
    payload = engine.stats.as_dict()
    for key in (
        "checkpoints_written", "resumed_from_checkpoint",
        "journal_skips", "quarantine_pruned",
    ):
        assert key in payload
    assert payload["resumed_from_checkpoint"] == 1
    rendered = engine.stats.render()
    assert "resumed" in rendered and "journal skip" in rendered


@pytest.mark.faults
def test_cli_experiment_checkpoint_resume(tmp_path, capsys):
    from repro.__main__ import main

    cache = str(tmp_path / "cache")
    code = main([
        "experiment", "table2", "--scale", str(SCALE), "--cache", cache,
        "--checkpoint-every", "50000", "--json",
    ])
    assert code == 0
    first = json.loads(capsys.readouterr().out)
    assert first["params"]["checkpoint_every"] == 50000
    assert first["params"]["resume"] is False

    code = main([
        "experiment", "table2", "--scale", str(SCALE), "--cache", cache,
        "--resume", "--json",
    ])
    assert code == 0
    second = json.loads(capsys.readouterr().out)
    assert second["params"]["resume"] is True
    assert second["results"]["engine"]["journal_skips"] > 0
    assert second["results"]["output"] == first["results"]["output"]


def test_cli_resume_without_cache_exits_2(capsys):
    from repro.__main__ import main

    assert main(["experiment", "table2", "--resume"]) == 2
    assert "--cache" in capsys.readouterr().err


def test_checkpoint_payloads_use_protocol_4(tmp_path):
    """Snapshot payloads stay loadable by any modern interpreter."""
    store = make_store(tmp_path)
    store.put("stem", 1, {"x": 1})
    raw = store.path("stem", 1).read_bytes()
    blob = raw[len(CHECKPOINT_MAGIC):].split(b"\n", 1)[1]
    assert pickle.loads(blob) == {"x": 1}
