"""CLI (`python -m repro`) tests."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.schema import SCHEMA_VERSION


def _json_out(capsys, command):
    document = json.loads(capsys.readouterr().out)
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["command"] == command
    assert set(document) == {
        "schema_version", "command", "params", "results",
    }
    return document


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out and "gcc" in out
    assert "rle" in out and "queens" in out


def test_run_command(capsys):
    assert main(["run", "plot", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "static branches" in out
    assert "conditional branches" in out


def test_profile_command(capsys):
    assert main(["profile", "plot", "--scale", "0.05",
                 "--threshold", "5"]) == 0
    out = capsys.readouterr().out
    assert "working sets" in out


def test_allocate_command(capsys):
    assert main(["allocate", "plot", "--scale", "0.05",
                 "--threshold", "5"]) == 0
    out = capsys.readouterr().out
    assert "required BHT size" in out
    assert "with classification" in out


def test_experiment_command(capsys):
    assert main(["experiment", "table2", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_experiment_rejects_unknown_id():
    with pytest.raises(SystemExit):
        main(["experiment", "table9"])


def test_disasm_command_with_head(capsys):
    assert main(["disasm", "plot", "--scale", "0.05", "--head", "5"]) == 0
    out = capsys.readouterr().out
    assert "main:" in out
    assert "more lines" in out


def test_cfg_command(capsys):
    assert main(["cfg", "plot", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "blocks:" in out and "natural loops" in out


def test_cfg_command_lists_loops(capsys):
    assert main(["cfg", "plot", "--scale", "0.05", "--loops"]) == 0
    out = capsys.readouterr().out
    assert "back edge" in out


def test_lint_command_single_benchmark(capsys):
    assert main(["lint", "plot", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "plot: clean" in out


def test_lint_all_is_clean(capsys):
    """The CI entry point: every registered analog lints clean."""
    assert main(["lint", "--all", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert out.count("clean") == 15


def test_lint_command_requires_target(capsys):
    assert main(["lint"]) == 2
    assert "--all" in capsys.readouterr().err


def test_allocate_static_runs_without_simulation(capsys):
    assert main(["allocate", "plot", "--static", "--scale", "0.05",
                 "--threshold", "5", "--bht", "64"]) == 0
    out = capsys.readouterr().out
    assert "no profiling run" in out
    assert "predicted conflict graph" in out
    assert "allocation @64 entries" in out


def test_run_json_envelope(capsys):
    assert main(["run", "plot", "--scale", "0.05", "--json"]) == 0
    document = _json_out(capsys, "run")
    assert document["params"]["benchmark"] == "plot"
    assert document["params"]["backend"] == "interp"
    assert document["results"]["retired_instructions"] > 0
    assert document["results"]["static_branches"] > 0


def test_version_reports_package_and_schema(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out.strip()
    assert out == f"repro {__version__} (schema {SCHEMA_VERSION})"


def test_run_backend_flag_is_equivalent(capsys):
    assert main(["run", "plot", "--scale", "0.05", "--json"]) == 0
    interp = _json_out(capsys, "run")
    assert main(["run", "plot", "--scale", "0.05", "--json",
                 "--backend", "superblock"]) == 0
    superblock = _json_out(capsys, "run")
    assert superblock["params"]["backend"] == "superblock"
    # identical results; only the params differ (by the backend name)
    assert superblock["results"] == interp["results"]


def test_run_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["run", "plot", "--backend", "jit"])


def test_profile_backend_flag(capsys, tmp_path):
    assert main(["profile", "plot", "--scale", "0.05", "--threshold", "5",
                 "--backend", "superblock", "--json"]) == 0
    document = _json_out(capsys, "profile")
    assert document["params"]["backend"] == "superblock"
    assert document["results"]["working_sets"] > 0


def test_profile_json_envelope(capsys):
    assert main(["profile", "plot", "--scale", "0.05",
                 "--threshold", "5", "--json"]) == 0
    document = _json_out(capsys, "profile")
    assert document["results"]["working_sets"] > 0
    assert document["results"]["threshold"] == 5


def test_allocate_json_envelope(capsys):
    assert main(["allocate", "plot", "--scale", "0.05",
                 "--threshold", "5", "--json"]) == 0
    document = _json_out(capsys, "allocate")
    assert document["params"]["static"] is False
    assert document["results"]["required_size_plain"] > 0


def test_allocate_static_json_envelope(capsys):
    assert main(["allocate", "plot", "--static", "--scale", "0.05",
                 "--threshold", "5", "--bht", "64", "--json"]) == 0
    document = _json_out(capsys, "allocate")
    assert document["params"]["static"] is True
    assert document["results"]["predicted_nodes"] > 0


def test_experiment_jobs_and_cache(tmp_path, capsys):
    argv = ["experiment", "table2", "--scale", "0.03",
            "--cache", str(tmp_path), "--jobs", "2"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "simulated" in out          # per-job timing block
    assert "cache: 0 hit(s)" in out

    # warm rerun: every artifact comes back from the store
    assert main(argv + ["--json"]) == 0
    document = _json_out(capsys, "experiment")
    assert document["params"]["jobs"] == 2
    engine = document["results"]["engine"]
    assert engine["simulated"] == 0
    assert engine["store_hits"] == len(document["results"]["benchmarks"])
    assert "Table 2" in document["results"]["output"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


@pytest.mark.parametrize(
    "argv",
    [
        ["run", "doom", "--scale", "0.05"],
        ["profile", "doom", "--scale", "0.05"],
        ["allocate", "doom", "--scale", "0.05"],
        ["allocate", "doom", "--static", "--scale", "0.05"],
        ["cfg", "doom", "--scale", "0.05"],
        ["lint", "doom", "--scale", "0.05"],
        ["disasm", "doom", "--scale", "0.05"],
    ],
)
def test_unknown_benchmark_exits_with_error(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark 'doom'" in err


def test_lint_json_envelope(capsys):
    assert main(["lint", "plot", "--scale", "0.05", "--json"]) == 0
    document = _json_out(capsys, "lint")
    assert document["params"]["strict"] is False
    [report] = document["results"]["reports"]
    assert report["name"] == "plot"
    assert report["clean"] is True
    assert document["results"]["failed"] is False
    assert document["results"]["waived"] == 0


def test_lint_strict_passes_on_clean_program(capsys):
    assert main(["lint", "plot", "--scale", "0.05", "--strict"]) == 0


def test_lint_rejects_malformed_waiver(capsys):
    assert main(["lint", "plot", "--waive", "nocolon"]) == 2
    assert "BENCH:CODE" in capsys.readouterr().err


def test_lint_waiver_suppresses_strict_failure(capsys, monkeypatch):
    from repro.static_analysis.lint import Diagnostic, LintReport

    def fake_lint(program, check_registers=True):
        return LintReport(
            name="plot",
            diagnostics=(
                Diagnostic("warning", "dead-store", "synthetic", 0x1000),
            ),
        )

    monkeypatch.setattr("repro.__main__.lint_program", fake_lint)
    base = ["lint", "plot", "--scale", "0.05", "--strict"]
    assert main(base) == 1
    capsys.readouterr()
    assert main(base + ["--waive", "plot:dead-store", "--json"]) == 0
    document = _json_out(capsys, "lint")
    assert document["results"]["waived"] == 1
    assert document["results"]["failed"] is False


def test_verify_static_command(capsys):
    assert main(["verify-static", "plot", "--scale", "0.05",
                 "--threshold", "5"]) == 0
    out = capsys.readouterr().out
    assert "hit rate" in out and "plot" in out
    assert "suite dynamic hit rate" in out


def test_verify_static_json_envelope(capsys):
    assert main(["verify-static", "plot", "--scale", "0.05",
                 "--threshold", "5", "--json"]) == 0
    document = _json_out(capsys, "verify-static")
    assert document["params"]["benchmarks"] == ["plot"]
    [row] = document["results"]["rows"]
    assert row["benchmark"] == "plot"
    assert 0.5 < row["hit_rate"] <= 1.0
    assert row["heuristics"]
    suite = document["results"]["suite"]
    assert suite["executions"] > 0
    assert suite["hit_rate"] == row["hit_rate"]


def test_verify_static_unknown_benchmark(capsys):
    assert main(["verify-static", "doom", "--scale", "0.05"]) == 2
    assert "unknown benchmark 'doom'" in capsys.readouterr().err
