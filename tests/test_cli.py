"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out and "gcc" in out
    assert "rle" in out and "queens" in out


def test_run_command(capsys):
    assert main(["run", "plot", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "static branches" in out
    assert "conditional branches" in out


def test_profile_command(capsys):
    assert main(["profile", "plot", "--scale", "0.05",
                 "--threshold", "5"]) == 0
    out = capsys.readouterr().out
    assert "working sets" in out


def test_allocate_command(capsys):
    assert main(["allocate", "plot", "--scale", "0.05",
                 "--threshold", "5"]) == 0
    out = capsys.readouterr().out
    assert "required BHT size" in out
    assert "with classification" in out


def test_experiment_command(capsys):
    assert main(["experiment", "table2", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_experiment_rejects_unknown_id():
    with pytest.raises(SystemExit):
        main(["experiment", "table9"])


def test_disasm_command_with_head(capsys):
    assert main(["disasm", "plot", "--scale", "0.05", "--head", "5"]) == 0
    out = capsys.readouterr().out
    assert "main:" in out
    assert "more lines" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_benchmark_propagates():
    with pytest.raises(KeyError):
        main(["run", "doom", "--scale", "0.05"])
