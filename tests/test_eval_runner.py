"""BenchmarkRunner caching tests."""

import numpy as np

from repro.eval.runner import BenchmarkRunner


def test_artifacts_are_memoised(runner):
    first = runner.artifacts("compress")
    second = runner.artifacts("compress")
    assert first is second


def test_artifacts_contents(runner):
    artifacts = runner.artifacts("compress")
    assert artifacts.name == "compress"
    assert len(artifacts.trace) > 1000
    assert artifacts.profile.static_branch_count > 20
    assert artifacts.instructions > 100_000
    # the profile's branch population matches the trace's
    assert set(artifacts.profile.branches) == set(
        artifacts.trace.static_branches()
    )


def test_invalidate_drops_memo(runner):
    first = runner.artifacts("compress")
    runner.invalidate("compress")
    second = runner.artifacts("compress")
    assert first is not second
    assert np.array_equal(first.trace.pcs, second.trace.pcs)
    runner._artifacts["compress"] = first  # restore for other tests


def test_disk_cache_round_trip(tmp_path):
    fast = BenchmarkRunner(scale=0.05, cache_dir=tmp_path)
    first = fast.artifacts("plot")
    files = list(tmp_path.iterdir())
    assert any(f.suffix == ".npz" for f in files)
    assert any(f.suffix == ".json" for f in files)

    # a fresh runner loads from disk instead of re-simulating
    reloaded = BenchmarkRunner(scale=0.05, cache_dir=tmp_path)
    second = reloaded.artifacts("plot")
    assert np.array_equal(first.trace.pcs, second.trace.pcs)
    assert second.profile.pairs == first.profile.pairs


def test_trace_limit_caps_events(tmp_path):
    limited = BenchmarkRunner(scale=0.05, trace_limit=500)
    artifacts = limited.artifacts("plot")
    assert len(artifacts.trace) == 500
