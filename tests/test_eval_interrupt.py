"""SIGTERM drain: the flag, the sliced runner, the engine, the CLI.

The cooperative-drain contract (:mod:`repro.eval.interrupt`) is what
turns a terminated run from "lost progress" into "checkpointed pause":

* the process-local drain flag and the driver/worker signal handlers;
* ``run_simulation``'s ``stop_check`` hook — a drained simulation
  writes one final checkpoint (regardless of cadence) and reports
  ``interrupted``, and the resumed run reproduces an uninterrupted
  run's artifacts byte for byte;
* ``ExecutionEngine.prefetch`` raising a typed
  :class:`~repro.errors.SuiteInterrupted` that names what completed and
  what remains, with ``--resume`` continuing from there;
* the ``repro experiment`` process surviving a real SIGTERM with exit
  code 1 and a resumable journal.

The simulation-heavy cases are marked ``faults``; the flag/handler unit
tests run everywhere.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    run_simulation,
)
from repro.errors import SuiteInterrupted
from repro.eval import interrupt
from repro.eval.engine import ExecutionEngine
from repro.pipeline.bus import BranchEventBus
from repro.pipeline.consumers import TraceBuilder
from repro.trace.io import save_trace
from repro.workloads import build_workload, get_benchmark

REPO = Path(__file__).resolve().parent.parent
SCALE = 0.05


@pytest.fixture(autouse=True)
def clean_drain_flag():
    interrupt.reset_drain()
    yield
    interrupt.reset_drain()


# -- the drain flag and handlers ---------------------------------------------


def test_drain_flag_round_trip():
    assert not interrupt.drain_requested()
    interrupt.request_drain()
    assert interrupt.drain_requested()
    interrupt.reset_drain()
    assert not interrupt.drain_requested()


def test_sigterm_drain_routes_signal_and_restores_disposition():
    before = signal.getsignal(signal.SIGTERM)
    with interrupt.sigterm_drain():
        assert signal.getsignal(signal.SIGTERM) is not before
        os.kill(os.getpid(), signal.SIGTERM)
        # the handler sets the flag instead of killing this process
        for _ in range(100):
            if interrupt.drain_requested():
                break
            time.sleep(0.01)
        assert interrupt.drain_requested()
    assert signal.getsignal(signal.SIGTERM) is before
    assert not interrupt.drain_requested()  # cleared on exit


def test_install_worker_handler_sets_flag_on_sigterm():
    before = signal.getsignal(signal.SIGTERM)
    try:
        interrupt.install_worker_handler()
        os.kill(os.getpid(), signal.SIGTERM)
        for _ in range(100):
            if interrupt.drain_requested():
                break
            time.sleep(0.01)
        assert interrupt.drain_requested()
    finally:
        signal.signal(signal.SIGTERM, before)


def test_set_pdeathsig_is_gated_on_env(monkeypatch):
    # without the env opt-in this must be a silent no-op everywhere
    monkeypatch.delenv(interrupt.PDEATHSIG_ENV, raising=False)
    interrupt.set_pdeathsig()
    monkeypatch.setenv(interrupt.PDEATHSIG_ENV, "1")
    interrupt.set_pdeathsig()  # best-effort; must never raise


# -- engine: a drained prefetch raises SuiteInterrupted ----------------------


def test_prefetch_drained_before_start_raises_suite_interrupted(tmp_path):
    engine = ExecutionEngine(cache_dir=tmp_path / "cache", scale=SCALE)
    interrupt.request_drain()
    with pytest.raises(SuiteInterrupted) as info:
        engine.prefetch(["plot"])
    assert engine.interrupted is True
    assert info.value.context["completed"] == []
    assert info.value.context["remaining"] == ["plot"]
    assert "--resume" in str(info.value)
    # nothing ran, nothing was journaled as completed
    interrupt.reset_drain()
    fresh = ExecutionEngine(
        cache_dir=tmp_path / "cache", scale=SCALE, resume=True
    )
    results = fresh.prefetch(["plot"])
    assert set(results) == {"plot"}
    assert fresh.interrupted is False


# -- sliced runner: stop_check drains with zero progress lost ----------------


def _trace_bytes(built, tmp_path, tag, config=None, stop_check=None):
    builder = TraceBuilder(label="plot")
    bus = BranchEventBus([builder])
    outcome = run_simulation(
        built, bus, config=config, stop_check=stop_check,
    )
    bus.finish()
    path = tmp_path / f"{tag}.trace.npz"
    save_trace(builder.result, path)
    return outcome, path.read_bytes()


@pytest.mark.faults
def test_stop_check_writes_final_checkpoint_and_resume_is_identical(
    tmp_path,
):
    built = build_workload(get_benchmark("plot", scale=SCALE))
    _, baseline = _trace_bytes(built, tmp_path, "baseline")

    store = CheckpointStore(tmp_path / "checkpoints")
    config = CheckpointConfig(
        store=store, stem="plot-stem", every_events=1_000_000,
    )
    # cadence far beyond the run: the only checkpoint is the drain's
    outcome, _ = _trace_bytes(
        built, tmp_path, "drained", config=config,
        stop_check=lambda: True,
    )
    assert outcome.interrupted is True
    assert outcome.checkpoints_written == 1
    assert store.sequences("plot-stem")  # the final checkpoint exists

    resumed, resumed_bytes = _trace_bytes(
        built, tmp_path, "resumed", config=config,
    )
    assert resumed.interrupted is False
    assert resumed.resumed_from_checkpoint is True
    assert resumed_bytes == baseline


@pytest.mark.faults
def test_parallel_prefetch_drains_mid_run_and_resumes(tmp_path):
    """SIGTERM (simulated via the flag) while two workers are busy:
    prefetch raises SuiteInterrupted, and a ``--resume`` engine on the
    same cache finishes the suite."""
    engine = ExecutionEngine(
        cache_dir=tmp_path / "cache",
        scale=0.3,
        jobs=2,
        checkpoint_every_events=1_000,
        retry_backoff=0.01,
    )
    timer = threading.Timer(1.5, interrupt.request_drain)
    timer.start()
    try:
        with pytest.raises(SuiteInterrupted) as info:
            engine.prefetch(["plot", "compress"])
    finally:
        timer.cancel()
    assert engine.interrupted is True
    assert set(info.value.context["remaining"]) <= {"plot", "compress"}

    interrupt.reset_drain()
    resumed = ExecutionEngine(
        cache_dir=tmp_path / "cache",
        scale=0.3,
        jobs=2,
        checkpoint_every_events=1_000,
        retry_backoff=0.01,
        resume=True,
    )
    results = resumed.prefetch(["plot", "compress"])
    assert set(results) == {"plot", "compress"}
    assert resumed.failures == {}
    assert resumed.interrupted is False


# -- the CLI process under a real SIGTERM ------------------------------------


@pytest.mark.faults
def test_cli_experiment_survives_sigterm_and_resumes(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    cache = tmp_path / "cache"
    args = [
        sys.executable, "-m", "repro", "experiment", "table2",
        "--scale", str(SCALE), "--jobs", "2",
        "--cache", str(cache), "--checkpoint-every", "2000", "--json",
    ]
    proc = subprocess.Popen(
        args, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE
    )
    # wait until at least one benchmark has been journaled, then drain
    journal = cache / "journal.jsonl"
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if journal.exists() and journal.stat().st_size > 0:
            break
        if proc.poll() is not None:
            raise AssertionError(
                f"experiment exited early: {proc.stderr.read().decode()}"
            )
        time.sleep(0.05)
    else:
        raise AssertionError("journal never appeared")
    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=120)
    if proc.returncode == 0:
        pytest.skip("suite finished before the drain window")
    assert proc.returncode == 1
    text = stderr.decode()
    assert "suite_interrupted" in text
    assert "--resume" in text

    # the drained run is resumable: completed work is skipped, the rest
    # runs, and the experiment emits its envelope with exit code 0
    result = subprocess.run(
        args + ["--resume"], env=env, capture_output=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr.decode()
    envelope = json.loads(result.stdout.decode())
    assert envelope["command"] == "experiment"
