"""Branch allocator and conflict-cost tests."""

import pytest

from repro.allocation.allocator import BranchAllocator
from repro.allocation.conflict_cost import (
    conflict_cost,
    conflicting_pairs,
    conventional_cost,
)
from repro.analysis.conflict_graph import ConflictGraph
from repro.predictors.indexing import PCModuloIndex, StaticIndexMap
from repro.profiling.profile import BranchStats, InterleaveProfile, pair_key


def _profile():
    # three branches interleaving heavily + one cold pair below threshold
    return InterleaveProfile(
        branches={
            0x1000: BranchStats(500, 250),
            0x2000: BranchStats(400, 200),
            0x3000: BranchStats(300, 150),
            0x4000: BranchStats(5, 2),
        },
        pairs={
            pair_key(0x1000, 0x2000): 400,
            pair_key(0x1000, 0x3000): 350,
            pair_key(0x2000, 0x3000): 300,
            pair_key(0x3000, 0x4000): 4,  # below threshold
        },
        name="alloc-test",
    )


def test_allocator_builds_pruned_graph():
    allocator = BranchAllocator(_profile(), threshold=100)
    assert allocator.graph.node_count == 4
    assert allocator.graph.edge_count == 3


def test_allocation_conflict_free_with_enough_entries():
    allocator = BranchAllocator(_profile())
    result = allocator.allocate(8)
    assert result.cost == 0
    indices = {result.assignment[pc] for pc in (0x1000, 0x2000, 0x3000)}
    assert len(indices) == 3


def test_allocation_shares_when_table_too_small():
    allocator = BranchAllocator(_profile())
    result = allocator.allocate(2)
    # the triangle cannot be 2-coloured: cheapest edge (300) shares
    assert result.cost == 300


def test_index_map_covers_mapped_and_falls_back():
    allocator = BranchAllocator(_profile())
    result = allocator.allocate(16)
    index_map = result.index_map()
    assert isinstance(index_map, StaticIndexMap)
    assert index_map.index(0x1000) == result.assignment[0x1000]
    # unprofiled branch uses PC-modulo fallback
    assert index_map.index(0x5554) == PCModuloIndex(16).index(0x5554)


def test_restrict_to_drops_cold_branches():
    allocator = BranchAllocator(
        _profile(), restrict_to=[0x1000, 0x2000]
    )
    assert allocator.graph.node_count == 2
    result = allocator.allocate(4)
    assert 0x3000 not in result.assignment


def test_conflict_cost_with_dict_and_index_fn():
    graph = ConflictGraph()
    graph.add_edge(1, 2, 100)
    graph.add_edge(1, 3, 50)
    assert conflict_cost(graph, {1: 0, 2: 0, 3: 1}) == 100
    assert conflict_cost(graph, {1: 0, 2: 1, 3: 0}) == 50
    assert conflict_cost(graph, {1: 0, 2: 1, 3: 2}) == 0


def test_conflict_cost_with_callable():
    graph = ConflictGraph()
    graph.add_edge(4, 8, 70)
    assert conflict_cost(graph, lambda pc: 0) == 70


def test_conventional_cost_uses_pc_modulo():
    graph = ConflictGraph()
    # 0x1000 and 0x1000 + 4*16 alias in a 16-entry table
    graph.add_edge(0x1000, 0x1000 + 64, 500)
    graph.add_edge(0x1000, 0x1004, 200)
    assert conventional_cost(graph, bht_size=16) == 500


def test_conflicting_pairs_diagnostic():
    graph = ConflictGraph()
    graph.add_edge(1, 2, 10)
    pairs = conflicting_pairs(graph, {1: 3, 2: 3})
    assert pairs == {(1, 2): 10}


def test_allocation_result_records_threshold():
    allocator = BranchAllocator(_profile(), threshold=42)
    assert allocator.allocate(4).threshold == 42
