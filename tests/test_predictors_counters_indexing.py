"""Saturating counter and index-function tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predictors.counters import CounterTable
from repro.predictors.indexing import (
    PCModuloIndex,
    StaticIndexMap,
    XorFoldIndex,
)


# -- counters ----------------------------------------------------------------


def test_counter_initialises_weakly_taken():
    table = CounterTable(4, bits=2)
    assert all(v == 2 for v in table.table)
    assert table.predict(0)


def test_counter_saturates_high_and_low():
    table = CounterTable(1, bits=2)
    for _ in range(10):
        table.update(0, True)
    assert table.table[0] == 3
    for _ in range(10):
        table.update(0, False)
    assert table.table[0] == 0


def test_one_wrong_flips_weakly_taken():
    table = CounterTable(1, bits=2)  # starts at 2 (weakly taken)
    table.update(0, False)
    # value 1 < threshold 2 -> now predicts not taken
    assert table.table[0] == 1
    assert not table.predict(0)


def test_access_predicts_before_updating():
    table = CounterTable(1, bits=2)
    prediction = table.access(0, False)
    assert prediction is True      # predicted from the pre-update value 2
    assert table.table[0] == 1


def test_counter_widths():
    table = CounterTable(1, bits=3)
    assert table.max_value == 7
    assert table.threshold == 4
    table_1bit = CounterTable(1, bits=1, initial=0)
    assert not table_1bit.predict(0)
    table_1bit.update(0, True)
    assert table_1bit.predict(0)


def test_counter_reset():
    table = CounterTable(2, bits=2)
    table.update(0, True)
    table.reset()
    assert table.table == [2, 2]
    table.reset(initial=0)
    assert table.table == [0, 0]


def test_counter_validation():
    with pytest.raises(ValueError):
        CounterTable(0)
    with pytest.raises(ValueError):
        CounterTable(4, bits=0)
    with pytest.raises(ValueError):
        CounterTable(4, bits=2, initial=9)


@given(st.lists(st.booleans(), max_size=60))
def test_counter_stays_in_range(outcomes):
    table = CounterTable(1, bits=2)
    for taken in outcomes:
        table.update(0, taken)
        assert 0 <= table.table[0] <= 3


# -- index functions -----------------------------------------------------------


def test_pc_modulo_discards_word_offset():
    index = PCModuloIndex(1024)
    assert index.index(0x1000) == index.index(0x1000 + 1024 * 4) != \
        index.index(0x1004)


def test_pc_modulo_range():
    index = PCModuloIndex(64)
    for pc in range(0, 4096, 4):
        assert 0 <= index.index(pc) < 64


def test_index_size_validation():
    with pytest.raises(ValueError):
        PCModuloIndex(0)


def test_xorfold_requires_power_of_two():
    with pytest.raises(ValueError):
        XorFoldIndex(100)
    index = XorFoldIndex(256)
    for pc in range(0, 1 << 16, 52):
        assert 0 <= index.index(pc) < 256


def test_static_map_uses_assignment_then_fallback():
    index = StaticIndexMap(16, {0x1000: 7})
    assert index.index(0x1000) == 7
    assert index.index(0x2004) == PCModuloIndex(16).index(0x2004)
    assert index.mapped_count == 1


def test_static_map_rejects_out_of_range_entries():
    with pytest.raises(ValueError):
        StaticIndexMap(8, {0x1000: 8})


def test_static_map_rejects_mismatched_fallback():
    with pytest.raises(ValueError):
        StaticIndexMap(8, {}, fallback=PCModuloIndex(16))


def test_index_functions_are_callable():
    assert PCModuloIndex(4)(0x1008) == PCModuloIndex(4).index(0x1008)
