"""Differential testing of the interpreter against a Python evaluator.

Hypothesis generates random straight-line ALU programs; a simple Python
model predicts the final register file, and the simulator must agree —
covering wrap, shift, compare and divide semantics across the whole
operand space rather than hand-picked cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.isa.registers import NUM_REGISTERS
from repro.sim.machine import Simulator
from repro.sim.state import unsigned32, wrap32

# registers the generated programs may touch (t/a/s registers, not x0/ra/sp)
_REGS = list(range(5, 18))

_BINARY_OPS = [
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
]
_IMM_OPS = ["addi", "andi", "ori", "xori", "slti"]
_SHIFT_IMM_OPS = ["slli", "srli", "srai"]


def _model_binary(op, a, b):
    if op == "add":
        return wrap32(a + b)
    if op == "sub":
        return wrap32(a - b)
    if op == "mul":
        return wrap32(a * b)
    if op == "div":
        if b == 0:
            return -1
        quotient = abs(a) // abs(b)
        return wrap32(-quotient if (a < 0) != (b < 0) else quotient)
    if op == "rem":
        if b == 0:
            return a
        remainder = abs(a) % abs(b)
        return wrap32(-remainder if a < 0 else remainder)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return wrap32(a << (b & 31))
    if op == "srl":
        return wrap32(unsigned32(a) >> (b & 31))
    if op == "sra":
        return a >> (b & 31)
    if op == "slt":
        return 1 if a < b else 0
    if op == "sltu":
        return 1 if unsigned32(a) < unsigned32(b) else 0
    raise AssertionError(op)


def _model_imm(op, a, imm):
    if op == "addi":
        return wrap32(a + imm)
    if op == "andi":
        return a & imm
    if op == "ori":
        return wrap32(a | imm)
    if op == "xori":
        return wrap32(a ^ imm)
    if op == "slti":
        return 1 if a < imm else 0
    if op == "slli":
        return wrap32(a << (imm & 31))
    if op == "srli":
        return wrap32(unsigned32(a) >> (imm & 31))
    if op == "srai":
        return a >> (imm & 31)
    raise AssertionError(op)


_reg = st.sampled_from(_REGS)
_instruction = st.one_of(
    st.tuples(st.sampled_from(_BINARY_OPS), _reg, _reg, _reg),
    st.tuples(
        st.sampled_from(_IMM_OPS), _reg, _reg,
        st.integers(min_value=-8192, max_value=8191),
    ),
    st.tuples(
        st.sampled_from(_SHIFT_IMM_OPS), _reg, _reg,
        st.integers(min_value=0, max_value=31),
    ),
)


@settings(max_examples=150, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
        min_size=len(_REGS),
        max_size=len(_REGS),
    ),
    instructions=st.lists(_instruction, max_size=40),
)
def test_alu_program_matches_python_model(seeds, instructions):
    # seed registers via li, then run the random instruction sequence
    regs = [0] * NUM_REGISTERS
    lines = ["main:"]
    for reg, value in zip(_REGS, seeds):
        lines.append(f"    li x{reg}, {value}")
        regs[reg] = value
    for op, rd, rs1, rs2_or_imm in instructions:
        if op in _BINARY_OPS:
            lines.append(f"    {op} x{rd}, x{rs1}, x{rs2_or_imm}")
            regs[rd] = _model_binary(op, regs[rs1], regs[rs2_or_imm])
        else:
            lines.append(f"    {op} x{rd}, x{rs1}, {rs2_or_imm}")
            regs[rd] = _model_imm(op, regs[rs1], rs2_or_imm)
    lines.append("    halt")

    simulator = Simulator(assemble("\n".join(lines)))
    simulator.run(allow_truncation=False)
    for reg in _REGS:
        assert simulator.state.read(reg) == regs[reg], (
            f"x{reg} diverged"
        )
