"""Clustered-misprediction analysis tests (paper §6 open question)."""

import pytest

from repro.analysis.clustering import (
    detect_transitions,
    misprediction_clustering,
)
from repro.analysis.conflict_graph import build_conflict_graph
from repro.analysis.working_sets import partition_working_sets
from repro.predictors.twolevel import PAgPredictor
from repro.profiling.interleave import profile_trace
from repro.trace.synthetic import make_phased_workload


@pytest.fixture(scope="module")
def phased():
    workload = make_phased_workload(
        n_phases=6,
        branches_per_phase=12,
        iterations=300,
        seed=31,
        text_span=1 << 20,
    )
    trace = workload.generate(seed=32)
    profile = profile_trace(trace)
    graph = build_conflict_graph(profile, threshold=50)
    partition = partition_working_sets(graph)
    return workload, trace, partition


def test_transitions_found_at_phase_boundaries(phased):
    workload, trace, partition = phased
    report = detect_transitions(trace, partition, window=128, stride=32)
    # 6 phases -> 5 boundaries; probing granularity may add a couple of
    # flickers but the count must be in that regime, not ~0 and not huge
    assert 5 <= len(report.transitions) <= 15
    # phase boundaries land every len(trace)/6 events
    phase_length = len(trace) // 6
    for boundary in range(phase_length, len(trace), phase_length):
        assert any(
            abs(t - boundary) <= 192 for t in report.transitions
        ), boundary


def test_single_phase_has_no_transitions():
    workload = make_phased_workload(
        n_phases=1, branches_per_phase=10, iterations=300, seed=5
    )
    trace = workload.generate(seed=6)
    profile = profile_trace(trace)
    partition = partition_working_sets(
        build_conflict_graph(profile, threshold=50)
    )
    report = detect_transitions(trace, partition, window=128, stride=32)
    assert report.transitions == []
    assert max(report.active_sets_trace) == 1


def test_detect_transitions_validation(phased):
    _, trace, partition = phased
    with pytest.raises(ValueError):
        detect_transitions(trace, partition, window=0)
    with pytest.raises(ValueError):
        detect_transitions(trace, partition, stride=0)


def test_mispredictions_cluster_at_transitions(phased):
    """The paper's conjecture, affirmed on the synthetic workload: a fresh
    working set means cold histories, so mispredictions spike there."""
    workload, trace, partition = phased
    report = misprediction_clustering(
        PAgPredictor.conventional(256, 8),
        trace,
        partition,
        radius=256,
        warmup=512,
    )
    assert report.transition_events > 0
    assert report.steady_events > 0
    assert report.transition_rate > report.steady_rate
    assert report.clustering_ratio > 1.2


def test_clustering_report_ratio_edge_cases():
    from repro.analysis.clustering import ClusteringReport

    perfect = ClusteringReport(0.0, 0.0, 10, 10)
    assert perfect.clustering_ratio == 1.0
    spike = ClusteringReport(0.5, 0.0, 10, 10)
    assert spike.clustering_ratio == float("inf")
