"""Trace statistics (Table 1 machinery) and downsampling tests."""

import numpy as np
import pytest

from repro.trace.events import BranchTrace
from repro.trace.sampling import systematic_sample, truncate
from repro.trace.stats import frequency_cutoff, summarize_trace


def _skewed_trace():
    # branch 0x100 executes 90 times, 0x200 9 times, 0x300 once
    pcs = [0x100] * 90 + [0x200] * 9 + [0x300]
    return BranchTrace(
        np.array(pcs, dtype=np.uint64),
        np.array([0x80] * 100, dtype=np.uint64),
        np.array([True] * 100),
        np.arange(100, dtype=np.uint64),
        name="skewed",
    )


def test_frequency_cutoff_keeps_hot_branches_first():
    kept, covered = frequency_cutoff(_skewed_trace(), coverage=0.9)
    assert kept == [0x100]
    assert covered == 90


def test_frequency_cutoff_full_coverage_keeps_everything():
    kept, covered = frequency_cutoff(_skewed_trace(), coverage=1.0)
    assert kept == [0x100, 0x200, 0x300]
    assert covered == 100


def test_frequency_cutoff_max_static_cap():
    kept, covered = frequency_cutoff(
        _skewed_trace(), coverage=1.0, max_static=2
    )
    assert kept == [0x100, 0x200]
    assert covered == 99


def test_frequency_cutoff_rejects_bad_coverage():
    with pytest.raises(ValueError):
        frequency_cutoff(_skewed_trace(), coverage=0.0)


def test_summarize_trace_matches_paper_columns():
    summary = summarize_trace(_skewed_trace(), coverage=0.99)
    assert summary.total_dynamic == 100
    assert summary.analyzed_dynamic == 99
    assert summary.total_static == 3
    assert summary.analyzed_static == 2
    assert summary.percent_analyzed == pytest.approx(99.0)
    assert summary.taken_fraction == 1.0


def test_summarize_empty_trace():
    empty = BranchTrace.from_events([], name="empty")
    summary = summarize_trace(empty)
    assert summary.total_dynamic == 0
    assert summary.percent_analyzed == 0.0


def test_truncate():
    trace = _skewed_trace()
    assert len(truncate(trace, 10)) == 10
    assert truncate(trace, 1000) is trace
    with pytest.raises(ValueError):
        truncate(trace, -1)


def test_systematic_sample_keeps_whole_windows():
    trace = _skewed_trace()
    sampled = systematic_sample(trace, window=10, keep_every=2)
    assert len(sampled) == 50
    # first window intact, second dropped
    assert list(sampled.timestamps[:10]) == list(range(10))
    assert sampled.timestamps[10] == 20


def test_systematic_sample_identity_cases():
    trace = _skewed_trace()
    assert systematic_sample(trace, window=10, keep_every=1) is trace
    assert systematic_sample(trace, window=1000, keep_every=5) is trace


def test_systematic_sample_validates_arguments():
    trace = _skewed_trace()
    with pytest.raises(ValueError):
        systematic_sample(trace, window=0, keep_every=2)
    with pytest.raises(ValueError):
        systematic_sample(trace, window=10, keep_every=0)
