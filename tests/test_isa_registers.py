"""Register file naming tests."""

import pytest

from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    is_register,
    register_name,
    register_number,
)


def test_register_count():
    assert NUM_REGISTERS == 32
    assert len(ABI_NAMES) == 32


def test_abi_names_resolve_to_their_index():
    for number, name in enumerate(ABI_NAMES):
        assert register_number(name) == number


def test_x_and_r_spellings():
    for number in range(NUM_REGISTERS):
        assert register_number(f"x{number}") == number
        assert register_number(f"r{number}") == number


def test_case_insensitive():
    assert register_number("SP") == register_number("sp") == 2
    assert register_number("T0") == 5


def test_fp_aliases_s0():
    assert register_number("fp") == register_number("s0") == 8


def test_zero_is_register_zero():
    assert register_number("zero") == 0


def test_argument_registers_are_contiguous():
    assert [register_number(f"a{i}") for i in range(8)] == list(range(10, 18))


def test_unknown_register_raises():
    with pytest.raises(KeyError):
        register_number("q7")


def test_register_name_round_trip():
    for number in range(NUM_REGISTERS):
        assert register_number(register_name(number)) == number


def test_register_name_out_of_range():
    with pytest.raises(ValueError):
        register_name(32)
    with pytest.raises(ValueError):
        register_name(-1)


def test_is_register_predicate():
    assert is_register("t3")
    assert is_register(" x31 ")
    assert not is_register("loop")
    assert not is_register("x32")
