"""ExecutionEngine tests: digests, the artifact store, and parallel runs."""

import json

import numpy as np
import pytest

import repro.eval.experiments as experiments_mod
from repro.eval.engine import (
    ArtifactStore,
    ExecutionEngine,
    JobSpec,
    compute_job_digest,
    prefetch_artifacts,
)
from repro.eval.experiments import run_experiment
from repro.eval.runner import BenchmarkRunner
from repro.eval.tables import format_table2, run_table2
from repro.trace.io import read_trace_meta

#: Small enough to keep each simulation ~1s.
SCALE = 0.05
SUBSET = ["plot", "pgp", "compress"]


# -- content digests --------------------------------------------------------


def test_digest_is_deterministic():
    spec = JobSpec("plot", scale=SCALE)
    first = compute_job_digest(spec)
    second = compute_job_digest(spec)
    assert first == second
    assert len(first) == 64
    int(first, 16)  # valid hex


def test_digest_tracks_content():
    base = compute_job_digest(JobSpec("plot", scale=SCALE))
    # a different program image, a different scale (hence input/fuel), and
    # a different capture limit must all produce different digests
    assert compute_job_digest(JobSpec("pgp", scale=SCALE)) != base
    assert compute_job_digest(JobSpec("plot", scale=0.1)) != base
    assert (
        compute_job_digest(JobSpec("plot", scale=SCALE, trace_limit=500))
        != base
    )


def test_cache_paths_fold_digest(tmp_path):
    """The legacy name-sSCALE scheme now carries the content digest, so a
    kernel edit (different digest) can never resurrect a stale artifact."""
    runner = BenchmarkRunner(scale=SCALE, cache_dir=tmp_path)
    trace_path, profile_path = runner._cache_paths("plot")
    digest = runner.engine.digest("plot")
    assert digest[: ArtifactStore.DIGEST_CHARS] in trace_path.name
    assert digest[: ArtifactStore.DIGEST_CHARS] in profile_path.name
    assert trace_path.name.startswith(f"plot-s{SCALE:g}-")


# -- artifact store ---------------------------------------------------------


def test_store_round_trip_and_counters(tmp_path):
    cold = ExecutionEngine(scale=SCALE, cache_dir=tmp_path)
    first = cold.artifacts("plot")
    assert cold.stats.simulated == 1
    assert cold.stats.store_hits == 0

    digest = cold.digest("plot")
    stem = f"plot-s{SCALE:g}-{digest[:ArtifactStore.DIGEST_CHARS]}"
    trace_path = tmp_path / f"{stem}.trace.npz"
    meta_path = tmp_path / f"{stem}.meta.json"
    assert trace_path.exists()
    assert (tmp_path / f"{stem}.profile.json").exists()

    # provenance is stamped both in the sidecar and inside the trace file
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    assert meta["digest"] == digest
    assert meta["benchmark"] == "plot"
    assert read_trace_meta(trace_path)["digest"] == digest

    # a fresh engine loads from the store instead of re-simulating
    warm = ExecutionEngine(scale=SCALE, cache_dir=tmp_path)
    second = warm.artifacts("plot")
    assert warm.stats.store_hits == 1
    assert warm.stats.simulated == 0
    assert np.array_equal(first.trace.pcs, second.trace.pcs)
    assert second.profile.pairs == first.profile.pairs
    assert second.instructions == first.instructions
    assert second.static_branches == first.static_branches

    # repeated access is memoised (and counted)
    assert warm.artifacts("plot") is second
    assert warm.stats.memo_hits == 1


def test_stats_render_mentions_jobs_and_cache(tmp_path):
    engine = ExecutionEngine(scale=SCALE, cache_dir=tmp_path)
    engine.artifacts("plot")
    rendered = engine.stats.render()
    assert "plot" in rendered
    assert "simulated" in rendered
    assert "cache:" in rendered
    as_dict = engine.stats.as_dict()
    assert as_dict["simulated"] == 1
    assert as_dict["jobs"][0]["benchmark"] == "plot"


def test_engine_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        ExecutionEngine(scale=SCALE, jobs=0)


# -- parallel determinism ---------------------------------------------------


def test_parallel_matches_sequential(tmp_path):
    """--jobs N must be invisible in the outputs: same digests, same
    traces, same rendered table as a sequential run."""
    seq = ExecutionEngine(scale=SCALE, cache_dir=tmp_path / "seq")
    seq.prefetch(SUBSET)
    par = ExecutionEngine(scale=SCALE, cache_dir=tmp_path / "par", jobs=4)
    par.prefetch(SUBSET)
    assert par.stats.simulated == len(SUBSET)

    for name in SUBSET:
        assert seq.digest(name) == par.digest(name)
        a, b = seq.artifacts(name), par.artifacts(name)
        assert np.array_equal(a.trace.pcs, b.trace.pcs)
        assert np.array_equal(a.trace.taken, b.trace.taken)
        assert a.profile.pairs == b.profile.pairs

    table_seq = format_table2(run_table2(seq, SUBSET, threshold=5))
    table_par = format_table2(run_table2(par, SUBSET, threshold=5))
    assert table_seq == table_par


def test_parallel_without_store_ships_artifacts(tmp_path):
    """With no store the pool pickles artifacts back to the parent."""
    seq = ExecutionEngine(scale=SCALE)
    par = ExecutionEngine(scale=SCALE, jobs=4)
    names = SUBSET[:2]
    seq.prefetch(names)
    par.prefetch(names)
    for name in names:
        assert np.array_equal(
            seq.trace(name).pcs, par.trace(name).pcs
        )
        assert seq.profile(name).pairs == par.profile(name).pairs


# -- uniform runner API -----------------------------------------------------


def test_run_experiment_accepts_bare_engine(tmp_path):
    """Experiment entry points take an engine or the facade uniformly."""
    engine = ExecutionEngine(scale=0.03, cache_dir=tmp_path, jobs=2)
    out = run_experiment("table2", engine)
    assert "Table 2" in out
    assert engine.stats.simulated > 0


def test_prefetch_artifacts_tolerates_plain_runner():
    class Stub:
        pass

    prefetch_artifacts(Stub(), ["plot"])  # no prefetch method: no-op


def test_run_all_shim_is_gone():
    # the deprecated run_all alias completed its removal cycle
    assert not hasattr(experiments_mod, "run_all")
    import repro.eval

    assert not hasattr(repro.eval, "run_all")
