"""End-to-end integration: workload -> trace -> profile -> working sets ->
allocation -> predictor, checking the paper's qualitative claims hold on
both the synthetic generator and a real simulated benchmark analog."""

import pytest

from conftest import TEST_THRESHOLD
from repro.allocation.allocator import BranchAllocator
from repro.allocation.classified import ClassifiedBranchAllocator
from repro.allocation.conflict_cost import conventional_cost
from repro.allocation.sizing import required_bht_size
from repro.analysis.conflict_graph import build_conflict_graph
from repro.analysis.working_sets import is_clique, partition_working_sets
from repro.predictors.simulator import simulate_predictor
from repro.predictors.twolevel import InterferenceFreePAg, PAgPredictor
from repro.profiling.interleave import profile_trace
from repro.trace.synthetic import make_phased_workload


def test_full_pipeline_on_synthetic_workload():
    """Ground-truth phases -> recovered working sets -> allocation that
    beats conventional indexing on conflict cost and prediction."""
    workload = make_phased_workload(
        n_phases=12, branches_per_phase=24, iterations=120, seed=21,
        text_span=1 << 20,
    )
    trace = workload.generate(seed=22)
    profile = profile_trace(trace)

    # working sets match the generator's phases
    graph = build_conflict_graph(profile, threshold=50)
    partition = partition_working_sets(graph)
    truth = {
        frozenset(s) for s in workload.ground_truth_working_sets()
    }
    recovered = {frozenset(s) for s in partition.as_pc_sets()}
    assert recovered == truth

    # allocation: far fewer entries than 1024 beat the conventional table
    allocator = BranchAllocator(profile, threshold=50)
    baseline = conventional_cost(allocator.graph, 1024)
    sizing = required_bht_size(allocator, baseline)
    assert sizing.required_size <= 2 * 24

    # prediction: allocated 1024-entry table >= conventional, ~ infinite
    conventional = simulate_predictor(
        PAgPredictor.conventional(1024, 10), trace, track_per_branch=False
    ).misprediction_rate
    allocated = simulate_predictor(
        PAgPredictor.allocated(allocator.allocate(1024).index_map(), 10),
        trace,
        track_per_branch=False,
    ).misprediction_rate
    infinite = simulate_predictor(
        InterferenceFreePAg(10), trace, track_per_branch=False
    ).misprediction_rate
    assert allocated <= conventional + 1e-9
    assert abs(allocated - infinite) < 0.01


def test_full_pipeline_on_simulated_benchmark(runner):
    """The same chain on an actually-simulated assembly workload."""
    artifacts = runner.artifacts("tex")
    profile = artifacts.profile

    graph = build_conflict_graph(profile, threshold=TEST_THRESHOLD)
    partition = partition_working_sets(graph)
    # every working set is a clique and covers all profiled branches
    covered = set()
    for ws in partition.sets:
        assert is_clique(graph, list(ws.members))
        covered |= ws.members
    assert covered == set(graph.nodes())

    # sets are small relative to the static population (paper's Table 2
    # observation)
    assert partition.largest_size < profile.static_branch_count

    allocator = BranchAllocator(profile, threshold=TEST_THRESHOLD)
    baseline = conventional_cost(allocator.graph, 1024)
    sizing = required_bht_size(allocator, baseline)
    assert sizing.required_size < 1024

    classified = ClassifiedBranchAllocator(
        profile, threshold=TEST_THRESHOLD
    )
    sizing4 = required_bht_size(classified, baseline, min_size=3)
    assert sizing4.required_size <= sizing.required_size + 2

    trace = artifacts.trace
    conventional = simulate_predictor(
        PAgPredictor.conventional(1024, 12), trace, track_per_branch=False
    ).misprediction_rate
    allocated = simulate_predictor(
        PAgPredictor.allocated(allocator.allocate(1024).index_map(), 12),
        trace,
        track_per_branch=False,
    ).misprediction_rate
    infinite = simulate_predictor(
        InterferenceFreePAg(12), trace, track_per_branch=False
    ).misprediction_rate
    assert allocated <= conventional + 0.002
    assert abs(allocated - infinite) < 0.01


def test_profile_merging_covers_both_inputs(runner):
    """§5.2: merged profiles cover what either input exercises."""
    from repro.profiling.merge import coverage_against, merge_profiles

    profile_a = runner.profile("ss_a")
    profile_b = runner.profile("ss_b")
    merged = merge_profiles([profile_a, profile_b])
    assert coverage_against(merged, profile_a) == 1.0
    assert coverage_against(merged, profile_b) == 1.0
    # a single-input profile may not fully cover the other input
    assert coverage_against(profile_a, profile_b) <= 1.0


def test_trace_cache_reuse_matches_fresh_run(runner, tmp_path):
    """Disk-cached artifacts reproduce in-memory results exactly."""
    from repro.eval.runner import BenchmarkRunner

    cached = BenchmarkRunner(
        scale=runner.scale, cache_dir=tmp_path
    )
    first = cached.artifacts("plot")
    again = BenchmarkRunner(scale=runner.scale, cache_dir=tmp_path)
    second = again.artifacts("plot")
    assert first.profile.pairs == second.profile.pairs
    assert len(first.trace) == len(second.trace)
