"""Two-level predictor family tests.

Behavioural checks: a PAg learns a periodic local pattern perfectly after
warmup; a GAg learns cross-branch correlation; interference hurts aliased
PAg and the infinite BHT does not alias; PAp isolates pattern tables.
"""

import pytest

from repro.predictors.bht import BranchHistoryTable
from repro.predictors.gshare import GSharePredictor
from repro.predictors.indexing import PCModuloIndex, StaticIndexMap
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    InterferenceFreePAg,
    PAgPredictor,
    PApPredictor,
)

PATTERN = [True, True, False]  # TTN


def _drive(predictor, pc, outcomes, warmup):
    wrong = 0
    for i, taken in enumerate(outcomes):
        prediction = predictor.access(pc, taken)
        if i >= warmup and prediction != taken:
            wrong += 1
    return wrong


def test_pag_learns_short_local_pattern():
    predictor = PAgPredictor.conventional(bht_size=64, history_bits=6)
    outcomes = PATTERN * 80
    wrong = _drive(predictor, 0x1000, outcomes, warmup=60)
    assert wrong == 0


def test_pag_geometry_matches_paper():
    predictor = PAgPredictor.conventional(1024, 12)
    assert predictor.bht.size == 1024
    assert len(predictor.pht) == 4096


def test_pag_predict_without_update_is_pure():
    predictor = PAgPredictor.conventional(64, 6)
    before = list(predictor.pht.table)
    predictor.predict(0x1000)
    assert predictor.pht.table == before


def test_pag_reset():
    predictor = PAgPredictor.conventional(64, 6)
    _drive(predictor, 0x1000, PATTERN * 10, warmup=0)
    predictor.reset()
    assert predictor.bht.read(0x1000) == 0
    assert all(v == 2 for v in predictor.pht.table)


def test_aliasing_hurts_pag_and_allocation_fixes_it():
    # two branches with opposite periodic behaviour forced onto one entry
    pc_a, pc_b = 0x1000, 0x1000 + 64 * 4
    seq_a = [True, False] * 200
    seq_b = [False, True] * 200

    def run(index_fn):
        predictor = PAgPredictor(BranchHistoryTable(index_fn, 8))
        wrong = 0
        for i, (a, b) in enumerate(zip(seq_a, seq_b)):
            if predictor.access(pc_a, a) != a and i > 50:
                wrong += 1
            if predictor.access(pc_b, b) != b and i > 50:
                wrong += 1
        return wrong

    aliased = run(PCModuloIndex(64))
    separated = run(StaticIndexMap(64, {pc_a: 0, pc_b: 1}))
    assert separated <= aliased
    assert separated == 0


def test_interference_free_pag_equals_allocated_on_separated_branches():
    pcs = [0x1000 + 8 * i for i in range(8)]
    outcomes = PATTERN * 40
    infinite = InterferenceFreePAg(history_bits=6)
    wrong_infinite = sum(
        _drive(infinite, pc, outcomes, warmup=30) for pc in pcs
    )
    assert wrong_infinite == 0
    assert infinite.bht.size == 8


def test_gag_learns_global_correlation():
    # branch B copies branch A's outcome; GAg sees it in global history
    gag = GAgPredictor(history_bits=4)
    import itertools

    wrong = 0
    flip = itertools.cycle([True, False])
    for i in range(400):
        a = next(flip)
        gag.access(0x100, a)
        prediction = gag.access(0x200, a)
        if i > 50 and prediction != a:
            wrong += 1
    assert wrong == 0


def test_gag_validation():
    with pytest.raises(ValueError):
        GAgPredictor(history_bits=0)


def test_pap_isolates_pattern_tables():
    predictor = PApPredictor(
        BranchHistoryTable(PCModuloIndex(16), history_bits=4)
    )
    # two branches, same local pattern, opposite outcomes:
    # a shared PHT would fight; per-address PHTs do not
    wrong = 0
    for i in range(300):
        taken_a = i % 2 == 0
        if predictor.access(0x100, taken_a) != taken_a and i > 60:
            wrong += 1
        taken_b = i % 2 == 1
        if predictor.access(0x204, taken_b) != taken_b and i > 60:
            wrong += 1
    assert wrong == 0


def test_pap_reset_clears_lazy_tables():
    predictor = PApPredictor(
        BranchHistoryTable(PCModuloIndex(8), history_bits=3)
    )
    predictor.access(0x100, True)
    assert predictor.phts
    predictor.reset()
    assert not predictor.phts


def test_gas_geometry():
    predictor = GAsPredictor(history_bits=6, set_bits=3)
    assert len(predictor.pht) == 1 << 9
    with pytest.raises(ValueError):
        GAsPredictor(history_bits=0)


def test_gas_learns_per_set_correlation():
    predictor = GAsPredictor(history_bits=4, set_bits=2)
    wrong = _drive(predictor, 0x1000, [True, False] * 150, warmup=50)
    assert wrong == 0


def test_gshare_learns_pattern():
    predictor = GSharePredictor(history_bits=8)
    wrong = _drive(predictor, 0x1000, PATTERN * 100, warmup=60)
    assert wrong == 0


def test_gshare_validation():
    with pytest.raises(ValueError):
        GSharePredictor(history_bits=0)
