"""Environment-call layer tests."""

import pytest

from repro.asm.assembler import assemble
from repro.sim.machine import Simulator
from repro.sim.state import MachineState
from repro.sim.syscalls import A0, A1, Environment, SyscallError


def _run(body, input_data=b"", seed=0x2545F491):
    program = assemble(f"main:\n{body}\n    halt\n")
    simulator = Simulator(program, input_data=input_data, random_seed=seed)
    simulator.run(allow_truncation=False)
    return simulator


def test_exit_sets_code_and_halts():
    program = assemble("main:\n    li a0, 0\n    li a1, 3\n    ecall\n")
    simulator = Simulator(program)
    result = simulator.run(allow_truncation=False)
    assert result.halted and result.exit_code == 3


def test_print_int_appends_decimal_line():
    sim = _run("li a0, 1\nli a1, -42\necall")
    assert sim.environment.output == bytearray(b"-42\n")


def test_put_char():
    sim = _run("li a0, 2\nli a1, 'Z'\necall")
    assert sim.environment.output == bytearray(b"Z")


def test_get_char_stream_and_eof():
    sim = _run(
        """
    li a0, 3
    ecall
    mv t0, a0
    li a0, 3
    ecall
    mv t1, a0
    li a0, 3
    ecall
    mv t2, a0
    """,
        input_data=b"AB",
    )
    from repro.isa.registers import register_number as rn

    assert sim.state.read(rn("t0")) == ord("A")
    assert sim.state.read(rn("t1")) == ord("B")
    assert sim.state.read(rn("t2")) == -1


def test_input_size():
    sim = _run("li a0, 4\necall\nmv t0, a0", input_data=b"hello")
    from repro.isa.registers import register_number as rn

    assert sim.state.read(rn("t0")) == 5


def test_seek_rewinds_stream():
    sim = _run(
        """
    li a0, 3
    ecall
    li a0, 5
    li a1, 0
    ecall
    li a0, 3
    ecall
    mv t0, a0
    """,
        input_data=b"Q",
    )
    from repro.isa.registers import register_number as rn

    assert sim.state.read(rn("t0")) == ord("Q")


def test_seek_clamps_to_length():
    env = Environment(input_data=b"abc")
    state = MachineState()
    state.write(A0, 5)
    state.write(A1, 999)
    env.handle(state)
    assert env.cursor == 3


def test_random_is_deterministic_per_seed():
    sim_a = _run("li a0, 6\necall\nmv t0, a0", seed=77)
    sim_b = _run("li a0, 6\necall\nmv t0, a0", seed=77)
    sim_c = _run("li a0, 6\necall\nmv t0, a0", seed=78)
    from repro.isa.registers import register_number as rn

    va = sim_a.state.read(rn("t0"))
    assert va == sim_b.state.read(rn("t0"))
    assert va != sim_c.state.read(rn("t0"))


def test_random_matches_xorshift32_reference():
    env = Environment(random_seed=0x2545F491)
    x = 0x2545F491
    x ^= (x << 13) & 0xFFFFFFFF
    x ^= x >> 17
    x ^= (x << 5) & 0xFFFFFFFF
    assert env._next_random() == x


def test_unknown_syscall_raises():
    env = Environment()
    state = MachineState()
    state.write(A0, 99)
    with pytest.raises(SyscallError):
        env.handle(state)


def test_output_text_decoding():
    env = Environment()
    env.output.extend(b"ok\n")
    assert env.output_text() == "ok\n"
