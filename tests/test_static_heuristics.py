"""Ball–Larus heuristic catalogue, loop trip estimation, edge
frequencies, and the static-heur predictor's chunked replay path."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.predictors.static_pred import StaticHeuristicPredictor
from repro.static_analysis import build_cfg, find_loops
from repro.static_analysis.heuristics import (
    DEFAULT_LOOP_ITERS,
    estimate_edge_frequencies,
    estimate_loop_trips,
    predict_branches,
)


def predictions_of(source):
    cfg = build_cfg(assemble(source))
    return cfg, predict_branches(cfg)


def at(cfg, label, offset=0):
    return cfg.program.symbols[label] + offset


# --------------------------------------------------------------------------- #
# the catalogue, rule by rule
# --------------------------------------------------------------------------- #


def test_loop_back_edge_predicts_taken():
    cfg, preds = predictions_of(
        """
        main:
            addi s0, zero, 3
        loop:
            addi s0, s0, -1
            bne s0, zero, loop
            halt
        """
    )
    p = preds[at(cfg, "loop", 4)]
    assert p.taken and p.heuristic == "loop-back"
    assert p.confidence == 0.88


def test_loop_exit_predicts_staying_in_loop():
    # the beq jumps OUT of the loop: predicted not taken
    cfg, preds = predictions_of(
        """
        main:
            addi s0, zero, 3
        loop:
            beq s0, a0, done
            addi s0, s0, -1
            jal zero, loop
        done:
            halt
        """
    )
    p = preds[at(cfg, "loop")]
    assert not p.taken and p.heuristic == "loop-exit"
    assert p.confidence == 0.80


def test_opcode_exact_same_register_compare():
    cfg, preds = predictions_of(
        """
        main:
            beq s0, s0, target
            addi t0, zero, 1
        target:
            halt
        """
    )
    p = preds[at(cfg, "main")]
    assert p.taken and p.heuristic == "opcode-exact"
    assert p.confidence == 1.0


def test_opcode_exact_unsigned_against_zero():
    cfg, preds = predictions_of(
        """
        main:
            bltu a0, zero, target
            addi t0, zero, 1
        target:
            halt
        """
    )
    p = preds[at(cfg, "main")]
    assert not p.taken and p.heuristic == "opcode-exact"


def test_guard_zero_compares():
    cfg, preds = predictions_of(
        """
        main:
            beq a0, zero, error
            bne a1, zero, common
        error:
            halt
        common:
            halt
        """
    )
    beq = preds[at(cfg, "main")]
    assert not beq.taken and beq.heuristic == "guard"
    assert beq.confidence == 0.70
    bne = preds[at(cfg, "main", 4)]
    assert bne.taken and bne.heuristic == "guard"


def test_pointer_equality_predicted_unlikely():
    cfg, preds = predictions_of(
        """
        main:
            beq a0, a1, same
            addi t0, zero, 1
        same:
            halt
        """
    )
    p = preds[at(cfg, "main")]
    assert not p.taken and p.heuristic == "pointer"
    assert p.confidence == 0.60


def test_btfnt_fallback_predicts_backward_taken():
    cfg, preds = predictions_of(
        """
        main:
            addi t0, zero, 1
        back:
            addi t0, t0, 1
            blt t0, a0, back
            blt a0, t0, fwd
            addi t1, zero, 2
        fwd:
            halt
        """
    )
    backward = preds[at(cfg, "back", 4)]
    assert backward.taken and backward.heuristic == "loop-back"
    forward = preds[at(cfg, "back", 8)]
    # not a loop edge, not a zero compare: falls to btfnt, forward
    assert not forward.taken and forward.heuristic == "btfnt"
    assert forward.confidence == 0.55


def test_every_conditional_branch_gets_a_prediction():
    cfg, preds = predictions_of(
        """
        main:
            beq a0, zero, a
        a:
            bne a1, a2, b
        b:
            blt a3, a4, c
        c:
            halt
        """
    )
    assert set(preds) == {pc for pc, _ in cfg.conditional_branches()}
    assert all(0.5 <= p.confidence <= 1.0 for p in preds.values())


# --------------------------------------------------------------------------- #
# trip estimation and edge frequencies
# --------------------------------------------------------------------------- #

NESTED = """
main:
    addi s0, zero, 3
outer:
    addi s1, zero, 5
inner:
    addi s1, s1, -1
    bne s1, zero, inner
    addi s0, s0, -1
    bne s0, zero, outer
    halt
"""


def test_counted_loops_get_exact_trip_counts():
    cfg = build_cfg(assemble(NESTED))
    forest = find_loops(cfg)
    trips = estimate_loop_trips(cfg, forest)
    assert sorted(e.trips for e in trips.values()) == [3, 5]
    assert all(e.bounded and e.source == "counted" for e in trips.values())


def test_runtime_bound_falls_back_to_depth_default():
    cfg = build_cfg(
        assemble(
            """
            main:
                add s0, a0, zero
            loop:
                addi s0, s0, -1
                bne s0, zero, loop
                halt
            """
        )
    )
    [estimate] = estimate_loop_trips(cfg).values()
    assert not estimate.bounded
    assert estimate.source == "default-depth"
    assert estimate.trips == DEFAULT_LOOP_ITERS


def test_edge_frequencies_weight_inner_loops_heavier():
    cfg = build_cfg(assemble(NESTED))
    freqs = estimate_edge_frequencies(cfg)
    inner = cfg.block_at_address(cfg.program.symbols["inner"]).index
    outer = cfg.block_at_address(cfg.program.symbols["outer"]).index
    inner_back = freqs[(inner, inner)]
    outer_back = next(
        f for (tail, head), f in freqs.items()
        if head == outer and tail != outer
    )
    assert inner_back > outer_back > 0.0
    # a conditional branch splits its block frequency, never amplifies it
    branch_out = [f for (tail, _), f in freqs.items() if tail == inner]
    assert len(branch_out) == 2
    assert all(f <= 15.0 for f in branch_out)


# --------------------------------------------------------------------------- #
# the static-heur predictor: scalar and chunked paths agree bit-for-bit
# --------------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_chunked_access_matches_scalar_predict(data):
    n_known = data.draw(st.integers(min_value=0, max_value=12))
    known_pcs = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20).map(lambda x: x * 4),
            min_size=n_known, max_size=n_known, unique=True,
        )
    )
    directions = {
        pc: data.draw(st.booleans()) for pc in known_pcs
    }
    predictor = StaticHeuristicPredictor(directions)

    n_events = data.draw(st.integers(min_value=1, max_value=64))
    universe = known_pcs + [
        data.draw(st.integers(min_value=0, max_value=1 << 22))
        for _ in range(4)
    ]
    pcs = [data.draw(st.sampled_from(universe)) for _ in range(n_events)]
    targets = [
        data.draw(st.integers(min_value=0, max_value=1 << 22))
        for _ in range(n_events)
    ]

    chunked = predictor.access_chunk(
        np.asarray(pcs, dtype=np.int64),
        np.zeros(n_events, dtype=bool),
        np.asarray(targets, dtype=np.int64),
    )
    scalar = [predictor.predict(pc, t) for pc, t in zip(pcs, targets)]
    assert chunked.tolist() == scalar


def test_from_program_covers_every_branch():
    program = assemble(NESTED)
    predictor = StaticHeuristicPredictor.from_program(program)
    cfg = build_cfg(program)
    assert set(predictor.directions) == {
        pc for pc, _ in cfg.conditional_branches()
    }
    # loop-back branches predict taken
    inner_bne = cfg.program.symbols["inner"] + 4
    assert predictor.predict(inner_bne, cfg.program.symbols["inner"])
