"""Simulator facade and machine-state tests."""

from repro.asm.assembler import assemble
from repro.isa.program import STACK_TOP
from repro.sim.hooks import CompositeBranchHook, NullBranchHook
from repro.sim.machine import Simulator
from repro.sim.state import MachineState, unsigned32, wrap32


def test_wrap32_boundaries():
    assert wrap32(0x7FFFFFFF) == 0x7FFFFFFF
    assert wrap32(0x80000000) == -(1 << 31)
    assert wrap32(0xFFFFFFFF) == -1
    assert wrap32(1 << 32) == 0
    assert wrap32(-(1 << 32)) == 0


def test_unsigned32():
    assert unsigned32(-1) == 0xFFFFFFFF
    assert unsigned32(5) == 5


def test_machine_state_x0_is_hardwired():
    state = MachineState()
    state.write(0, 42)
    assert state.read(0) == 0


def test_register_dump_contains_all_registers():
    dump = MachineState().dump_registers()
    assert "zero" in dump and "t6" in dump and "pc=" in dump


def test_stack_pointer_initialised():
    program = assemble("main: mv t0, sp\nhalt\n")
    sim = Simulator(program)
    sim.run(allow_truncation=False)
    from repro.isa.registers import register_number

    assert sim.state.read(register_number("t0")) == STACK_TOP


def test_run_result_fields():
    program = assemble(
        """
main:
    li t0, 0
    li t1, 4
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a1, 0
    ecall
"""
    )
    result = Simulator(program).run(allow_truncation=False)
    assert result.halted
    assert result.conditional_branches == 4
    assert result.taken_branches == 3
    assert abs(result.taken_rate - 0.75) < 1e-12


def test_taken_rate_zero_when_no_branches():
    program = assemble("main: halt\n")
    result = Simulator(program).run(allow_truncation=False)
    assert result.taken_rate == 0.0


def test_null_hook_accepts_events():
    NullBranchHook().on_branch(0, 0, True, 0)  # must not raise


def test_composite_hook_fans_out_in_order():
    calls = []

    class Probe:
        def __init__(self, tag):
            self.tag = tag

        def on_branch(self, pc, target, taken, instruction_count):
            calls.append((self.tag, pc))

    hook = CompositeBranchHook([Probe("a"), Probe("b")])
    hook.on_branch(4, 8, True, 0)
    assert calls == [("a", 4), ("b", 4)]


def test_simulation_is_deterministic():
    source = """
main:
    li t0, 0
    li t1, 50
loop:
    li a0, 6
    ecall
    andi a0, a0, 1
    beqz a0, skip
    addi t0, t0, 1
skip:
    addi t1, t1, -1
    bgtz t1, loop
    mv a1, t0
    li a0, 1
    ecall
    li a0, 0
    li a1, 0
    ecall
"""
    program = assemble(source)
    out_a = Simulator(program, random_seed=5).run(allow_truncation=False)
    out_b = Simulator(program, random_seed=5).run(allow_truncation=False)
    assert out_a.output == out_b.output
    assert out_a.instructions == out_b.instructions
