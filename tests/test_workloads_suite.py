"""Benchmark-suite structure tests (cheap: specs only, few builds)."""

import pytest

from repro.workloads.build import build_workload
from repro.workloads.suite import (
    ALL_BENCHMARKS,
    FIGURE_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE34_BENCHMARKS,
    benchmark_names,
    benchmark_suite,
    get_benchmark,
)


def test_suite_contains_all_paper_benchmarks():
    suite = benchmark_suite()
    assert set(suite) == {
        "compress", "gcc", "ijpeg", "li", "m88ksim", "perl_a", "perl_b",
        "chess", "gs", "pgp", "plot", "python", "ss_a", "ss_b", "tex",
    }


def test_table_orders_match_paper():
    assert TABLE2_BENCHMARKS[0] == "compress"
    assert TABLE2_BENCHMARKS[1] == "gcc"
    assert len(TABLE2_BENCHMARKS) == 11
    assert len(TABLE34_BENCHMARKS) == 14
    assert "perl_a" in TABLE34_BENCHMARKS and "perl_b" in TABLE34_BENCHMARKS
    assert len(FIGURE_BENCHMARKS) == 13
    assert set(ALL_BENCHMARKS) >= set(TABLE2_BENCHMARKS)


def test_aliases_resolve_to_a_variant():
    assert get_benchmark("perl").name == "perl_a"
    assert get_benchmark("ss").name == "ss_a"
    assert get_benchmark("gcc").name == "gcc"


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        get_benchmark("doom")


def test_scale_validation():
    with pytest.raises(ValueError):
        benchmark_suite(scale=0)


def test_scale_changes_iterations_not_structure():
    full = benchmark_suite(1.0)["compress"]
    small = benchmark_suite(0.1)["compress"]
    assert len(full.phases) == len(small.phases)
    assert full.phases[0].calls == small.phases[0].calls
    assert small.phases[0].iterations < full.phases[0].iterations


def test_variants_differ_in_inputs_and_weights():
    suite = benchmark_suite()
    perl_a, perl_b = suite["perl_a"], suite["perl_b"]
    assert perl_a.input != perl_b.input
    assert perl_a.random_seed != perl_b.random_seed
    ss_a, ss_b = suite["ss_a"], suite["ss_b"]
    assert ss_a.phases[0].iterations != ss_b.phases[0].iterations


def test_every_spec_has_description_and_fuel():
    for name, spec in benchmark_suite().items():
        assert spec.description, name
        assert spec.fuel >= 300_000, name
        assert spec.rounds >= 2, name


def test_benchmark_names_variants_toggle():
    with_variants = benchmark_names(include_variants=True)
    without = benchmark_names(include_variants=False)
    assert "perl_a" in with_variants
    assert "perl" in without and "perl_a" not in without


def test_gcc_has_largest_static_branch_population():
    counts = {}
    for name in ("compress", "gcc"):
        built = build_workload(get_benchmark(name, scale=0.1))
        counts[name] = built.static_conditional_branches
    assert counts["gcc"] > counts["compress"] > 50
