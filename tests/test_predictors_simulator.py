"""Trace-driven predictor simulation tests."""

import pytest

from repro.predictors.simulator import (
    PredictionStats,
    compare_predictors,
    simulate_predictor,
)
from repro.predictors.static_pred import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.predictors.twolevel import PAgPredictor
from repro.trace.events import BranchEvent, BranchTrace


def _trace(outcomes, pc=0x100):
    return BranchTrace.from_events(
        [
            BranchEvent(pc, pc + 16, taken, 5 * i + 1)
            for i, taken in enumerate(outcomes)
        ],
        name="simtest",
    )


def test_always_taken_misprediction_rate():
    trace = _trace([True] * 75 + [False] * 25)
    stats = simulate_predictor(AlwaysTakenPredictor(), trace)
    assert stats.branches == 100
    assert stats.mispredictions == 25
    assert stats.misprediction_rate == pytest.approx(0.25)
    assert stats.accuracy == pytest.approx(0.75)


def test_per_branch_stats():
    trace = BranchTrace.from_events(
        [
            BranchEvent(0x100, 0, True, 1),
            BranchEvent(0x200, 0, False, 2),
            BranchEvent(0x100, 0, True, 3),
        ]
    )
    stats = simulate_predictor(AlwaysTakenPredictor(), trace)
    assert stats.per_branch[0x100] == [2, 0]
    assert stats.per_branch[0x200] == [1, 1]
    assert stats.misprediction_rate_of(0x200) == 1.0
    assert stats.misprediction_rate_of(0x999) == 0.0
    assert stats.worst_branches(1) == [0x200]


def test_per_branch_tracking_can_be_disabled():
    stats = simulate_predictor(
        AlwaysTakenPredictor(), _trace([True] * 10), track_per_branch=False
    )
    assert stats.per_branch == {}
    assert stats.branches == 10


def test_warmup_excludes_head_events():
    trace = _trace([False] * 10 + [True] * 10)
    stats = simulate_predictor(AlwaysTakenPredictor(), trace, warmup=10)
    assert stats.branches == 10
    assert stats.mispredictions == 0


def test_warmup_validation():
    with pytest.raises(ValueError):
        simulate_predictor(AlwaysTakenPredictor(), _trace([True]), warmup=-1)


def test_empty_trace():
    stats = simulate_predictor(AlwaysTakenPredictor(), _trace([]))
    assert stats.branches == 0
    assert stats.misprediction_rate == 0.0


def test_pag_on_periodic_trace_converges():
    trace = _trace([True, True, False] * 120)
    stats = simulate_predictor(
        PAgPredictor.conventional(64, 6), trace, warmup=80
    )
    assert stats.mispredictions == 0


def test_simulation_is_deterministic():
    trace = _trace([True, False, False, True] * 50)
    a = simulate_predictor(PAgPredictor.conventional(16, 4), trace)
    b = simulate_predictor(PAgPredictor.conventional(16, 4), trace)
    assert a.mispredictions == b.mispredictions


def test_compare_predictors_keys_by_name():
    trace = _trace([True] * 20)
    results = compare_predictors(
        [AlwaysTakenPredictor(), AlwaysNotTakenPredictor()], trace
    )
    assert results["always-taken"].mispredictions == 0
    assert results["always-not-taken"].mispredictions == 20


def test_compare_predictors_rejects_duplicate_names():
    trace = _trace([True])
    with pytest.raises(ValueError):
        compare_predictors(
            [AlwaysTakenPredictor(), AlwaysTakenPredictor()], trace
        )


def test_stats_dataclass_defaults():
    stats = PredictionStats(predictor="p", trace="t")
    assert stats.misprediction_rate == 0.0
    assert stats.worst_branches() == []
