"""Group-level working set analysis tests (paper §6 future work)."""

import pytest

from repro.analysis.conflict_graph import build_conflict_graph
from repro.analysis.groups import (
    Grouping,
    expand_group_assignment,
    fold_profile,
    group_by_bias,
    group_by_history_pattern,
)
from repro.profiling.profile import BranchStats, InterleaveProfile, pair_key
from repro.trace.events import BranchEvent, BranchTrace


def _profile():
    return InterleaveProfile(
        branches={
            0x10: BranchStats(100, 100),  # taken-biased
            0x20: BranchStats(100, 100),  # taken-biased
            0x30: BranchStats(100, 0),    # not-taken-biased
            0x40: BranchStats(100, 50),   # mixed
            0x50: BranchStats(100, 60),   # mixed
        },
        pairs={
            pair_key(0x10, 0x20): 300,  # internal to taken group
            pair_key(0x10, 0x30): 200,  # cross-group
            pair_key(0x10, 0x40): 150,
            pair_key(0x40, 0x50): 120,
        },
        instructions=5000,
        name="grp",
    )


def test_group_by_bias_assignment():
    grouping = group_by_bias(_profile())
    assert grouping.assignment[0x10] == grouping.assignment[0x20] == 0
    assert grouping.assignment[0x30] == 1
    # mixed branches stay in singleton groups
    assert grouping.assignment[0x40] != grouping.assignment[0x50]
    assert grouping.assignment[0x40] >= 2
    assert grouping.labels[0] == "taken-biased"
    assert grouping.group_count == 4


def test_grouping_members():
    grouping = group_by_bias(_profile())
    assert grouping.members(0) == [0x10, 0x20]


def test_fold_profile_sums_stats_and_drops_internal_pairs():
    profile = _profile()
    grouping = group_by_bias(profile)
    folded = fold_profile(profile, grouping)
    taken_group = grouping.assignment[0x10]
    assert folded.branches[taken_group].executions == 200
    assert folded.branches[taken_group].taken == 200
    # internal pair (0x10, 0x20) vanished
    total_pairs = sum(folded.pairs.values())
    assert total_pairs == 200 + 150 + 120
    assert folded.instructions == 5000


def test_fold_profile_passes_unassigned_branches_through():
    profile = _profile()
    grouping = Grouping(assignment={0x10: 0, 0x20: 0}, labels={0: "g"})
    folded = fold_profile(profile, grouping)
    # 1 merged group + 3 passthrough singletons
    assert len(folded.branches) == 4


def test_group_level_conflict_graph_is_smaller():
    profile = _profile()
    branch_graph = build_conflict_graph(profile, threshold=100)
    folded = fold_profile(profile, group_by_bias(profile))
    group_graph = build_conflict_graph(folded, threshold=100)
    assert group_graph.node_count < branch_graph.node_count
    assert group_graph.edge_count <= branch_graph.edge_count


def test_expand_group_assignment():
    grouping = group_by_bias(_profile())
    group_entries = {gid: gid % 4 for gid in set(
        grouping.assignment.values()
    )}
    expanded = expand_group_assignment(group_entries, grouping)
    assert expanded[0x10] == expanded[0x20]
    assert set(expanded) == set(grouping.assignment)


def _pattern_trace(spec):
    """spec: list of (pc, outcome string like 'TTN' repeated)."""
    events = []
    clock = 0
    for _ in range(40):
        for pc, pattern in spec:
            for ch in pattern:
                clock += 3
                events.append(BranchEvent(pc, pc + 8, ch == "T", clock))
    return BranchTrace.from_events(events, name="patterns")


def test_group_by_history_pattern_merges_matching_branches():
    trace = _pattern_trace([(0x100, "TTN"), (0x200, "TTN"), (0x300, "TN")])
    grouping = group_by_history_pattern(trace, pattern_bits=3)
    assert grouping.assignment[0x100] == grouping.assignment[0x200]
    assert grouping.assignment[0x300] != grouping.assignment[0x100]


def test_group_by_history_pattern_labels_patterns():
    trace = _pattern_trace([(0x100, "TTN"), (0x200, "TTN")])
    grouping = group_by_history_pattern(trace, pattern_bits=3)
    label = grouping.labels[grouping.assignment[0x100]]
    assert label.startswith("pattern-")
    assert set(label.split("-")[1]) <= {"T", "N"}


def test_group_by_history_pattern_irregular_branch_is_singleton():
    import numpy as np

    rng = np.random.default_rng(1)
    events = []
    clock = 0
    for _ in range(200):
        clock += 3
        events.append(
            BranchEvent(0x400, 0x408, bool(rng.random() < 0.5), clock)
        )
    trace = BranchTrace.from_events(events)
    grouping = group_by_history_pattern(trace, pattern_bits=4)
    assert grouping.labels[grouping.assignment[0x400]].startswith("branch-")


def test_group_by_history_pattern_validation():
    trace = _pattern_trace([(0x100, "TN")])
    with pytest.raises(ValueError):
        group_by_history_pattern(trace, pattern_bits=0)
    with pytest.raises(ValueError):
        group_by_history_pattern(trace, tolerance=1.0)


def test_short_streams_stay_singletons():
    events = [BranchEvent(0x100, 0x108, True, 3)]
    trace = BranchTrace.from_events(events)
    grouping = group_by_history_pattern(trace, pattern_bits=4)
    assert grouping.labels[grouping.assignment[0x100]].startswith("branch-")
