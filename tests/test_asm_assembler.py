"""Two-pass assembler tests: layout, symbols, pseudos, directives, errors."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.lexer import AsmSyntaxError
from repro.isa.instructions import Opcode
from repro.isa.program import DATA_BASE, TEXT_BASE


def test_forward_and_backward_branch_offsets():
    program = assemble(
        """
        main:
            beq t0, zero, end
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
        end:
            halt
        """
    )
    beq = program.instructions[0]
    assert beq.imm == 12  # three instructions forward
    bne = program.instructions[2]
    assert bne.imm == -4


def test_data_labels_resolve_to_data_base():
    program = assemble(
        """
        .data
        first: .word 7
        second: .word 8, 9
        .text
        main: halt
        """
    )
    assert program.symbols["first"] == DATA_BASE
    assert program.symbols["second"] == DATA_BASE + 4
    assert program.data[:4] == (7).to_bytes(4, "little")


def test_word_with_symbol_fixup():
    program = assemble(
        """
        .data
        table: .word handler, 5
        .text
        main: halt
        handler: halt
        """
    )
    stored = int.from_bytes(program.data[0:4], "little")
    assert stored == program.symbols["handler"]
    assert int.from_bytes(program.data[4:8], "little") == 5


def test_asciiz_and_align():
    program = assemble(
        """
        .data
        s: .asciiz "ab"
        .align 2
        w: .word 1
        .text
        main: halt
        """
    )
    assert program.data[:3] == b"ab\x00"
    assert program.symbols["w"] % 4 == 0


def test_space_directive():
    program = assemble(
        ".data\nbuf: .space 10\nend: .word 1\n.text\nmain: halt\n"
    )
    assert program.symbols["end"] - program.symbols["buf"] == 10


def test_byte_and_half_directives():
    program = assemble(
        ".data\nb: .byte 1, 2\nh: .half 0x1234\n.text\nmain: halt\n"
    )
    assert program.data[:2] == b"\x01\x02"
    assert program.data[2:4] == (0x1234).to_bytes(2, "little")


def test_li_small_expands_to_one_instruction():
    program = assemble("main: li t0, 100\nhalt\n")
    assert len(program) == 2
    assert program.instructions[0].opcode is Opcode.ADDI


def test_li_large_expands_to_lui_ori():
    program = assemble("main: li t0, 1000000\nhalt\n")
    assert [i.opcode for i in program.instructions[:2]] == [
        Opcode.LUI, Opcode.ORI
    ]


def test_li_unsigned_32bit_spelling():
    program = assemble("main: li t0, 0xEDB88320\nhalt\n")
    upper = program.instructions[0].imm
    lower = program.instructions[1].imm
    value = ((upper << 13) | lower) & 0xFFFFFFFF
    assert value == 0xEDB88320


def test_la_always_two_instructions():
    program = assemble(
        ".data\nx: .word 0\n.text\nmain: la t0, x\nhalt\n"
    )
    assert len(program) == 3
    upper, lower = program.instructions[0].imm, program.instructions[1].imm
    assert ((upper << 13) | lower) == program.symbols["x"]


def test_pseudo_expansions():
    program = assemble(
        """
        main:
            nop
            mv t0, t1
            not t2, t3
            neg t4, t5
            j main
            ret
        """
    )
    opcodes = [i.opcode for i in program.instructions]
    assert opcodes == [
        Opcode.ADDI, Opcode.ADDI, Opcode.XORI,
        Opcode.SUB, Opcode.JAL, Opcode.JALR,
    ]


def test_swapped_branch_pseudos():
    program = assemble("main: bgt t0, t1, main\nble t0, t1, main\n")
    bgt, ble = program.instructions
    assert bgt.opcode is Opcode.BLT and bgt.rs1 == 6 and bgt.rs2 == 5
    assert ble.opcode is Opcode.BGE and ble.rs1 == 6 and ble.rs2 == 5


def test_zero_branch_pseudos():
    program = assemble(
        "main: beqz t0, main\nbgtz t1, main\nblez t2, main\n"
    )
    beqz, bgtz, blez = program.instructions
    assert beqz.opcode is Opcode.BEQ and beqz.rs2 == 0
    assert bgtz.opcode is Opcode.BLT and bgtz.rs1 == 0 and bgtz.rs2 == 6
    assert blez.opcode is Opcode.BGE and blez.rs1 == 0 and blez.rs2 == 7


def test_call_uses_ra():
    program = assemble("main: call main\n")
    jal = program.instructions[0]
    assert jal.opcode is Opcode.JAL and jal.rd == 1


def test_skip_emits_filler():
    program = assemble("main: halt\n.skip 5\nafter: halt\n")
    assert len(program) == 7
    assert program.symbols["after"] == TEXT_BASE + 6 * 4


def test_duplicate_label_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("x: nop\nx: nop\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("main: j nowhere\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("main: frobnicate t0\n")


def test_instruction_in_data_segment_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(".data\nadd t0, t1, t2\n")


def test_immediate_out_of_range_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble("main: addi t0, t0, 100000\n")


def test_unknown_directive_rejected():
    with pytest.raises(AsmSyntaxError):
        assemble(".data\n.quadword 1\n")


def test_program_name_recorded():
    assert assemble("main: halt\n", name="demo").name == "demo"
