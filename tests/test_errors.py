"""The typed error taxonomy: hierarchy, serialisation, historical bases."""

import json
import pickle

import pytest

from repro import errors
from repro.errors import (
    ArtifactCorrupt,
    CheckpointCorrupt,
    JobCancelled,
    JobFailed,
    JobInterrupted,
    JobTimeout,
    JournalInvalid,
    MemAccessError,
    QuotaExceeded,
    ReproError,
    ServiceOverloaded,
    SuiteDegraded,
    SuiteInterrupted,
    error_to_dict,
)


# -- hierarchy --------------------------------------------------------------


def test_taxonomy_roots():
    for cls in (ArtifactCorrupt, CheckpointCorrupt, JobFailed, JobTimeout,
                JobCancelled, JobInterrupted, JournalInvalid,
                ServiceOverloaded, QuotaExceeded, SuiteDegraded,
                SuiteInterrupted, MemAccessError):
        assert issubclass(cls, ReproError)
    assert issubclass(JobTimeout, JobFailed)
    assert issubclass(JobCancelled, JobFailed)
    # an interrupted job is resumable progress, not a failure
    assert not issubclass(JobInterrupted, JobFailed)


def test_folded_errors_join_the_taxonomy():
    """Errors defined in their home modules are re-exported lazily and
    descend from ReproError while keeping their historical bases."""
    assert issubclass(errors.SimulationError, ReproError)
    assert issubclass(errors.SimulationError, RuntimeError)
    assert issubclass(errors.FuelExhausted, ReproError)
    assert issubclass(errors.FuelExhausted, RuntimeError)
    assert issubclass(errors.SyscallError, ReproError)
    assert issubclass(errors.AsmSyntaxError, ReproError)
    assert issubclass(errors.AsmSyntaxError, ValueError)
    assert issubclass(errors.EncodingError, ReproError)
    assert issubclass(errors.EncodingError, ValueError)


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        errors.NotAnError


def test_mem_access_error_legacy_alias_is_gone():
    # the deprecated MemoryError_ alias completed its removal cycle
    import repro.sim.memory as memory_module

    with pytest.raises(AttributeError):
        memory_module.MemoryError_
    assert issubclass(MemAccessError, RuntimeError)


def test_asm_syntax_error_keeps_line_formatting():
    exc = errors.AsmSyntaxError("bad mnemonic", 3)
    assert str(exc) == "line 3: bad mnemonic"
    assert exc.line == 3
    assert exc.to_dict()["line"] == 3


# -- serialisation ----------------------------------------------------------


def test_to_dict_carries_code_and_context():
    exc = JobTimeout("gcc blew its budget", benchmark="gcc",
                     timeout_seconds=2.5)
    payload = exc.to_dict()
    assert payload == {
        "error": "JobTimeout",
        "code": "job_timeout",
        "message": "gcc blew its budget",
        "benchmark": "gcc",
        "timeout_seconds": 2.5,
    }
    assert str(exc) == "gcc blew its budget"


def test_error_codes_are_distinct():
    classes = (ReproError, ArtifactCorrupt, CheckpointCorrupt, JobFailed,
               JobTimeout, JobCancelled, JobInterrupted, JournalInvalid,
               ServiceOverloaded, QuotaExceeded, SuiteDegraded,
               SuiteInterrupted, MemAccessError)
    codes = {cls.code for cls in classes}
    assert len(codes) == len(classes)


def test_error_to_dict_wraps_foreign_exceptions():
    payload = error_to_dict(ValueError("nope"))
    assert payload == {
        "error": "ValueError",
        "code": "unexpected_error",
        "message": "nope",
    }
    typed = error_to_dict(ArtifactCorrupt("bad entry", digest="abcd"))
    assert typed["code"] == "artifact_corrupt"
    assert typed["digest"] == "abcd"


def test_all_error_payloads_round_trip_through_json():
    """Every taxonomy member's to_dict() must survive json.dumps/loads —
    the CLI envelope and the run journal both persist these payloads."""
    from repro.eval.faults import InjectedFault

    samples = [
        ReproError("root", detail="context"),
        ArtifactCorrupt("bad entry", benchmark="gcc", digest="abcd",
                        quarantined=["a.trace.npz"]),
        CheckpointCorrupt("bad checkpoint", stem="gcc-s1-abcd", seq=3,
                          quarantined=[]),
        JobFailed("died", benchmark="gcc", attempts=2,
                  cause={"code": "unexpected_error"}),
        JobTimeout("slow", benchmark="gcc", timeout_seconds=1.5),
        JobCancelled("deadline", benchmark="gcc", deadline_s=2.0),
        JobInterrupted("drained", benchmark="gcc", events=1000,
                       checkpoints_written=2),
        JournalInvalid("garbage at line 3", path="journal.jsonl", line=3,
                       record="{oops"),
        ServiceOverloaded("queue full", queue_depth=16, queue_limit=16),
        QuotaExceeded("slow down", tenant="t0", retry_after_s=0.5),
        SuiteDegraded("all failed", benchmarks=["a", "b"]),
        SuiteInterrupted("drained", completed=["a"], remaining=["b"]),
        MemAccessError("unmapped", address=0xDEAD),
        InjectedFault("boom", benchmark="plot", fault="worker_kill",
                      events=15000),
        errors.SimulationError("pc left text"),
        errors.FuelExhausted("out of fuel"),
        errors.SyscallError("unknown syscall 99"),
    ]
    for exc in samples:
        payload = exc.to_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        assert round_tripped["code"] == type(exc).code
        assert round_tripped["error"] == type(exc).__name__


def test_checkpoint_corrupt_code():
    exc = CheckpointCorrupt("torn file", stem="x", seq=1)
    assert exc.code == "checkpoint_corrupt"
    assert error_to_dict(exc)["seq"] == 1


def test_repro_errors_pickle_round_trip():
    """Worker failures cross process boundaries; context must survive."""
    original = JobFailed("compress died", benchmark="compress", attempts=3)
    clone = pickle.loads(pickle.dumps(original))
    assert isinstance(clone, JobFailed)
    assert clone.message == "compress died"
    assert clone.context == {"benchmark": "compress", "attempts": 3}
    assert clone.to_dict() == original.to_dict()
