"""Statement parser tests."""

import pytest

from repro.asm.lexer import AsmSyntaxError
from repro.asm.parser import (
    DirectiveStmt,
    ImmOperand,
    InstrStmt,
    LabelStmt,
    MemOperand,
    RegOperand,
    SymOperand,
    parse,
)


def test_label_statement():
    (stmt,) = parse("loop:\n")
    assert isinstance(stmt, LabelStmt)
    assert stmt.name == "loop"


def test_label_and_instruction_on_separate_lines():
    stmts = parse("loop:\n  addi t0, t0, 1\n")
    assert isinstance(stmts[0], LabelStmt)
    assert isinstance(stmts[1], InstrStmt)


def test_register_operands_resolved():
    (stmt,) = parse("add a0, a1, a2")
    assert stmt.operands == (
        RegOperand(10), RegOperand(11), RegOperand(12)
    )


def test_immediate_operand():
    (stmt,) = parse("addi t0, zero, -42")
    assert stmt.operands[2] == ImmOperand(-42)


def test_symbol_operand():
    (stmt,) = parse("beq t0, zero, done")
    assert stmt.operands[2] == SymOperand("done")


def test_memory_operand_with_displacement():
    (stmt,) = parse("lw t0, 12(sp)")
    assert stmt.operands[1] == MemOperand(base=2, displacement=12)


def test_memory_operand_without_displacement():
    (stmt,) = parse("lw t0, (sp)")
    assert stmt.operands[1] == MemOperand(base=2, displacement=0)


def test_symbolic_displacement():
    (stmt,) = parse("lw t0, table(t1)")
    assert stmt.operands[1] == MemOperand(base=6, displacement="table")


def test_mnemonic_lowercased():
    (stmt,) = parse("ADDI t0, t0, 1")
    assert stmt.mnemonic == "addi"


def test_directive_with_mixed_args():
    (stmt,) = parse('.word 1, label, 3')
    assert isinstance(stmt, DirectiveStmt)
    assert stmt.args == (1, SymOperand("label"), 3)


def test_directive_with_string():
    (stmt,) = parse('.asciiz "hi"')
    assert stmt.args == ("hi",)


def test_no_operand_instruction():
    (stmt,) = parse("ecall")
    assert stmt.operands == ()


def test_missing_operand_after_comma_rejected():
    with pytest.raises(AsmSyntaxError):
        parse("add t0, t1,")


def test_bad_base_register_rejected():
    with pytest.raises(AsmSyntaxError):
        parse("lw t0, 4(banana)")


def test_statement_line_numbers():
    stmts = parse("nop\nnop\nfoo:\n")
    assert [s.line for s in stmts] == [1, 2, 3]
