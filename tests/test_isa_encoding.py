"""Binary encode/decode tests, including a property-based round trip."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import (
    IMM14_MAX,
    IMM14_MIN,
    IMM19_MAX,
    IMM19_MIN,
    EncodingError,
    decode,
    encode,
)
from repro.isa.instructions import Format, Instruction, Opcode

_REG = st.integers(min_value=0, max_value=31)
_IMM14 = st.integers(min_value=IMM14_MIN, max_value=IMM14_MAX)
_IMM19 = st.integers(min_value=IMM19_MIN, max_value=IMM19_MAX)
_OFF14 = _IMM14.map(lambda v: v * 4)
_OFF19 = _IMM19.map(lambda v: v * 4)

_BY_FORMAT = {
    Format.R: lambda op: st.builds(
        Instruction, st.just(op), rd=_REG, rs1=_REG, rs2=_REG
    ),
    Format.I: lambda op: st.builds(
        Instruction, st.just(op), rd=_REG, rs1=_REG, imm=_IMM14
    ),
    Format.LOAD: lambda op: st.builds(
        Instruction, st.just(op), rd=_REG, rs1=_REG, imm=_IMM14
    ),
    Format.STORE: lambda op: st.builds(
        Instruction, st.just(op), rs2=_REG, rs1=_REG, imm=_IMM14
    ),
    Format.B: lambda op: st.builds(
        Instruction, st.just(op), rs1=_REG, rs2=_REG, imm=_OFF14
    ),
    Format.J: lambda op: st.builds(
        Instruction, st.just(op), rd=_REG, imm=_OFF19
    ),
    Format.JR: lambda op: st.builds(
        Instruction, st.just(op), rd=_REG, rs1=_REG, imm=_IMM14
    ),
    Format.U: lambda op: st.builds(
        Instruction, st.just(op), rd=_REG, imm=_IMM19
    ),
    Format.SYS: lambda op: st.just(Instruction(op)),
}


def _any_instruction() -> st.SearchStrategy:
    return st.sampled_from(list(Opcode)).flatmap(
        lambda op: _BY_FORMAT[Instruction(op).format](op)
    )


@given(_any_instruction())
def test_encode_decode_round_trip(instruction):
    word = encode(instruction)
    assert 0 <= word < (1 << 32)
    decoded = decode(word)
    # label is display-only metadata and not encoded
    assert decoded == Instruction(
        instruction.opcode,
        rd=instruction.rd,
        rs1=instruction.rs1,
        rs2=instruction.rs2,
        imm=instruction.imm,
    )


def test_opcode_occupies_top_byte():
    word = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
    assert (word >> 24) == int(Opcode.ADD)


def test_negative_immediate_encodes():
    word = encode(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=-1))
    assert decode(word).imm == -1


def test_branch_offsets_are_word_scaled():
    word = encode(Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=-32))
    assert decode(word).imm == -32


def test_misaligned_branch_offset_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=6))


def test_out_of_range_immediate_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.ADDI, rd=1, rs1=0, imm=IMM14_MAX + 1))
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.LUI, rd=1, imm=IMM19_MIN - 1))


def test_invalid_opcode_byte_rejected():
    with pytest.raises(EncodingError):
        decode(0xFF << 24)


def test_jump_offset_range_is_wider_than_branch():
    far = (IMM19_MAX) * 4
    word = encode(Instruction(Opcode.JAL, rd=1, imm=far))
    assert decode(word).imm == far
