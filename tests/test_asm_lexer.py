"""Tokenizer tests."""

import pytest

from repro.asm.lexer import AsmSyntaxError, TokenKind, tokenize


def _kinds(source):
    return [t.kind for t in tokenize(source)]


def _values(source):
    return [t.value for t in tokenize(source)]


def test_simple_instruction_line():
    kinds = _kinds("addi t0, t1, 4")
    assert kinds == [
        TokenKind.IDENT, TokenKind.IDENT, TokenKind.COMMA,
        TokenKind.IDENT, TokenKind.COMMA, TokenKind.NUMBER,
        TokenKind.NEWLINE,
    ]


def test_comments_are_skipped():
    assert _kinds("# only a comment") == [TokenKind.NEWLINE]
    assert _kinds("nop ; trailing")[:1] == [TokenKind.IDENT]


def test_hex_and_negative_numbers():
    values = _values("li t0, 0xFF\nli t1, -12")
    assert 0xFF in values
    assert -12 in values


def test_char_literal_becomes_number():
    values = _values("li t0, 'A'")
    assert 65 in values


def test_char_escape():
    values = _values(r"li t0, '\n'")
    assert 10 in values


def test_string_decoding():
    tokens = list(tokenize(r'.asciiz "a\tb\0"'))
    assert tokens[1].kind is TokenKind.STRING
    assert tokens[1].value == "a\tb\0"


def test_unterminated_escape_rejected():
    with pytest.raises(AsmSyntaxError):
        list(tokenize(r'.asciiz "bad\q"'))


def test_directive_token():
    tokens = list(tokenize(".word 1, 2"))
    assert tokens[0].kind is TokenKind.DIRECTIVE
    assert tokens[0].value == ".word"


def test_memory_operand_tokens():
    kinds = _kinds("lw t0, 8(sp)")
    assert TokenKind.LPAREN in kinds and TokenKind.RPAREN in kinds


def test_label_colon():
    kinds = _kinds("loop:")
    assert kinds == [TokenKind.IDENT, TokenKind.COLON, TokenKind.NEWLINE]


def test_line_numbers_reported():
    tokens = list(tokenize("nop\nnop\nnop"))
    lines = {t.line for t in tokens}
    assert lines == {1, 2, 3}


def test_unexpected_character_raises_with_line():
    with pytest.raises(AsmSyntaxError) as excinfo:
        list(tokenize("nop\nadd t0, t1, `"))
    assert excinfo.value.line == 2
