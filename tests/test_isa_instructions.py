"""Instruction metadata tests."""

from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    OPCODE_FORMAT,
    UNCONDITIONAL_JUMPS,
    Format,
    Instruction,
    Opcode,
)


def test_every_opcode_has_a_format():
    for opcode in Opcode:
        assert opcode in OPCODE_FORMAT


def test_opcode_values_are_unique():
    values = [int(op) for op in Opcode]
    assert len(values) == len(set(values))


def test_conditional_branch_set():
    assert CONDITIONAL_BRANCHES == {
        Opcode.BEQ, Opcode.BNE, Opcode.BLT,
        Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
    }
    for opcode in CONDITIONAL_BRANCHES:
        assert OPCODE_FORMAT[opcode] is Format.B


def test_is_conditional_branch_property():
    assert Instruction(Opcode.BEQ).is_conditional_branch
    assert not Instruction(Opcode.JAL).is_conditional_branch
    assert not Instruction(Opcode.ADD).is_conditional_branch


def test_is_control_property():
    for opcode in CONDITIONAL_BRANCHES | UNCONDITIONAL_JUMPS:
        assert Instruction(opcode).is_control
    assert not Instruction(Opcode.LW).is_control


def test_instructions_are_immutable_and_hashable():
    a = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    b = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    assert a == b
    assert hash(a) == hash(b)


def test_disassemble_r_type():
    ins = Instruction(Opcode.ADD, rd=10, rs1=11, rs2=12)
    assert ins.disassemble() == "add a0, a1, a2"


def test_disassemble_load_store():
    assert Instruction(Opcode.LW, rd=5, rs1=2, imm=8).disassemble() == \
        "lw t0, 8(sp)"
    assert Instruction(Opcode.SW, rs2=5, rs1=2, imm=-4).disassemble() == \
        "sw t0, -4(sp)"


def test_disassemble_branch_with_label():
    ins = Instruction(Opcode.BNE, rs1=5, rs2=0, imm=-8, label="loop")
    assert ins.disassemble() == "bne t0, zero, loop"


def test_disassemble_branch_without_label_shows_offset():
    ins = Instruction(Opcode.BEQ, rs1=5, rs2=6, imm=16)
    assert ".+16" in ins.disassemble()


def test_disassemble_sys():
    assert Instruction(Opcode.ECALL).disassemble() == "ecall"
    assert Instruction(Opcode.HALT).disassemble() == "halt"
