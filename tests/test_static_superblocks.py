"""Superblock formation: structure on known programs, partition property
on hypothesis-generated random control flow, and verifier sharpness."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.static_analysis import build_cfg
from repro.static_analysis.heuristics import predict_branches
from repro.static_analysis.superblocks import (
    SuperblockInvariantError,
    form_superblocks,
    verify_cover,
)

NESTED = """
main:
    addi s0, zero, 3
outer:
    addi s1, zero, 5
inner:
    beq a0, zero, skip
    addi t0, zero, 1
skip:
    addi s1, s1, -1
    bne s1, zero, inner
    addi s0, s0, -1
    bne s0, zero, outer
    halt
"""


def cover_of(source, prefer=None):
    cfg = build_cfg(assemble(source))
    return form_superblocks(cfg, prefer=prefer)


def test_straight_line_program_is_one_region():
    cover = cover_of(
        """
        main:
            addi t0, zero, 1
            addi t0, t0, 1
            halt
        """
    )
    assert cover.region_count == 1
    [region] = cover.superblocks
    assert region.side_exits == () and region.exit_edges == ()
    assert cover.instruction_count(region) == 3


def test_diamond_forms_three_regions():
    cover = cover_of(
        """
        main:
            beq a0, zero, right
        left:
            addi t0, zero, 1
            jal zero, join
        right:
            addi t0, zero, 2
        join:
            halt
        """
    )
    cfg = cover.cfg
    join = cfg.block_at_address(cfg.program.symbols["join"]).index
    # the join has two predecessors, so it heads its own region; the
    # entry trace absorbs exactly one arm
    assert cover.region_of(join).entry == join
    entry_region = cover.region_of(cfg.entry)
    assert len(entry_region) == 2
    assert entry_region.side_exits  # the other arm is a side exit


def test_nested_loop_side_exits_are_back_edges():
    cover = cover_of(NESTED)
    cfg = cover.cfg
    inner = cfg.block_at_address(cfg.program.symbols["inner"]).index
    skip = cfg.block_at_address(cfg.program.symbols["skip"]).index
    region = cover.region_of(skip)
    # the skip-block trace runs to the halt; its inner/outer back edges
    # leave mid-trace as side exits
    targets = {succ for _, succ in region.side_exits}
    assert inner in targets


def test_prefer_map_steers_the_trace_through_taken_edges():
    source = """
    main:
        beq a0, zero, target
        addi t0, zero, 1
        halt
    target:
        addi t1, zero, 2
        halt
    """
    cfg = build_cfg(assemble(source))
    branch_pc = cfg.program.symbols["main"]
    target = cfg.block_at_address(cfg.program.symbols["target"]).index
    fallthrough_cover = form_superblocks(cfg)
    assert target not in fallthrough_cover.region_of(cfg.entry)
    taken_cover = form_superblocks(cfg, prefer={branch_pc: True})
    assert target in taken_cover.region_of(cfg.entry)


def test_heuristic_directions_compose_with_formation():
    cfg = build_cfg(assemble(NESTED))
    prefer = {pc: p.taken for pc, p in predict_branches(cfg).items()}
    cover = form_superblocks(cfg, prefer=prefer)
    # formation self-verifies; this pins that the heuristics' direction
    # map plugs in directly
    assert cover.region_count >= 1


# --------------------------------------------------------------------------- #
# verifier sharpness: corrupt covers must be rejected
# --------------------------------------------------------------------------- #


def test_verifier_rejects_duplicated_block():
    cover = cover_of(NESTED)
    region = cover.superblocks[0]
    cover.superblocks[0] = replace(
        region, blocks=region.blocks + (region.blocks[0],)
    )
    with pytest.raises(SuperblockInvariantError):
        verify_cover(cover)


def test_verifier_rejects_missing_block():
    cover = cover_of(NESTED)
    victim = next(r for r in cover.superblocks if len(r) >= 2)
    cover.superblocks[victim.index] = replace(
        victim, blocks=victim.blocks[:-1]
    )
    with pytest.raises(SuperblockInvariantError):
        verify_cover(cover)


def test_verifier_rejects_wrong_side_exits():
    cover = cover_of(NESTED)
    victim = next(r for r in cover.superblocks if r.side_exits)
    cover.superblocks[victim.index] = replace(victim, side_exits=())
    with pytest.raises(SuperblockInvariantError):
        verify_cover(cover)


# --------------------------------------------------------------------------- #
# hypothesis: the cover partitions every random CFG we can assemble
# --------------------------------------------------------------------------- #


@st.composite
def random_program(draw):
    """Assembly with random branch/jump structure over N labelled blocks.

    Every block gets a label so any block can be a branch target; each
    block carries a couple of ALU ops and ends in a conditional branch,
    an unconditional jump, a halt, or falls through; the program always
    ends in a halt so the final block terminates.
    """
    n_blocks = draw(st.integers(min_value=1, max_value=8))
    lines = ["main:"]
    for index in range(n_blocks):
        if index:
            lines.append(f"b{index}:")
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            reg = draw(st.sampled_from(["t0", "t1", "s0", "s1"]))
            imm = draw(st.integers(min_value=-4, max_value=4))
            lines.append(f"    addi {reg}, {reg}, {imm}")
        kind = draw(st.sampled_from(["branch", "jump", "halt", "fall"]))
        target_id = draw(st.integers(min_value=0, max_value=n_blocks - 1))
        target = "main" if target_id == 0 else f"b{target_id}"
        if kind == "branch":
            op = draw(st.sampled_from(["beq", "bne", "blt", "bge"]))
            lines.append(f"    {op} a0, zero, {target}")
        elif kind == "jump":
            lines.append(f"    jal zero, {target}")
        elif kind == "halt":
            lines.append("    halt")
    lines.append("    halt")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(source=random_program())
def test_cover_partitions_random_programs(source):
    """The acceptance property: every reachable block lands in exactly
    one superblock and every reachable instruction is covered once."""
    cfg = build_cfg(assemble(source))
    cover = form_superblocks(cfg)  # verify_cover runs inside

    reachable = cfg.reachable_blocks()
    seen = [b for region in cover.superblocks for b in region.blocks]
    assert len(seen) == len(set(seen))       # disjoint
    assert set(seen) == reachable            # complete
    assert set(cover.by_block) == reachable  # index agrees
    for region in cover.superblocks:
        # single entry: interior blocks have exactly the trace predecessor
        for above, block_id in zip(region.blocks, region.blocks[1:]):
            preds = [
                p for p in cfg.predecessors.get(block_id, ())
                if p in reachable
            ]
            assert preds == [above]
