"""BranchTrace container tests."""

import numpy as np
import pytest

from repro.trace.events import BranchEvent, BranchTrace


def _trace():
    return BranchTrace.from_events(
        [
            BranchEvent(pc=0x100, target=0x80, taken=True, timestamp=5),
            BranchEvent(pc=0x200, target=0x240, taken=False, timestamp=10),
            BranchEvent(pc=0x100, target=0x80, taken=True, timestamp=15),
            BranchEvent(pc=0x300, target=0x80, taken=True, timestamp=20),
        ],
        name="unit",
    )


def test_len_and_indexing():
    trace = _trace()
    assert len(trace) == 4
    event = trace[2]
    assert event.pc == 0x100 and event.taken and event.timestamp == 15


def test_iteration_yields_events_in_order():
    timestamps = [e.timestamp for e in _trace()]
    assert timestamps == [5, 10, 15, 20]


def test_static_branches_sorted_unique():
    assert _trace().static_branches() == [0x100, 0x200, 0x300]


def test_execution_counts():
    assert _trace().execution_counts() == {0x100: 2, 0x200: 1, 0x300: 1}


def test_taken_counts():
    counts = _trace().taken_counts()
    assert counts[0x100] == (2, 2)
    assert counts[0x200] == (1, 0)


def test_slice_preserves_columns():
    sliced = _trace().slice(1, 3)
    assert len(sliced) == 2
    assert sliced[0].pc == 0x200
    assert sliced[1].timestamp == 15


def test_filter_pcs():
    filtered = _trace().filter_pcs([0x100])
    assert len(filtered) == 2
    assert set(filtered.static_branches()) == {0x100}
    # timestamps survive filtering (important for interleave analysis)
    assert [e.timestamp for e in filtered] == [5, 15]


def test_column_length_mismatch_rejected():
    with pytest.raises(ValueError):
        BranchTrace(
            np.array([1], dtype=np.uint64),
            np.array([1, 2], dtype=np.uint64),
            np.array([True]),
            np.array([1], dtype=np.uint64),
        )


def test_repr_mentions_name_and_sizes():
    text = repr(_trace())
    assert "unit" in text and "events=4" in text
