"""Profile artifact and cumulative-merge tests."""

import pytest

from repro.profiling.merge import coverage_against, merge_profiles
from repro.profiling.profile import BranchStats, InterleaveProfile, pair_key


def _profile(name, branches, pairs):
    return InterleaveProfile(
        branches={
            pc: BranchStats(executions=ex, taken=tk)
            for pc, (ex, tk) in branches.items()
        },
        pairs={pair_key(a, b): c for (a, b), c in pairs.items()},
        instructions=1000,
        name=name,
    )


def test_pair_key_canonical():
    assert pair_key(5, 3) == (3, 5)
    assert pair_key(3, 5) == (3, 5)


def test_branch_stats_taken_rate():
    assert BranchStats(executions=4, taken=1).taken_rate == 0.25
    assert BranchStats().taken_rate == 0.0


def test_counts_properties():
    profile = _profile("p", {1: (10, 5), 2: (20, 0)}, {(1, 2): 7})
    assert profile.static_branch_count == 2
    assert profile.dynamic_branch_count == 30
    assert profile.execution_count(1) == 10
    assert profile.execution_count(99) == 0
    assert profile.interleave_count(2, 1) == 7
    assert profile.interleave_count(1, 99) == 0


def test_hot_branches_ranked_by_executions():
    profile = _profile("p", {1: (5, 0), 2: (50, 0), 3: (10, 0)}, {})
    assert profile.hot_branches(2) == [2, 3]


def test_json_round_trip():
    profile = _profile("rt", {4: (3, 2), 8: (1, 1)}, {(4, 8): 9})
    restored = InterleaveProfile.from_json(profile.to_json())
    assert restored.name == "rt"
    assert restored.instructions == 1000
    assert restored.branches[4].taken == 2
    assert restored.pairs == profile.pairs


def test_save_load(tmp_path):
    profile = _profile("disk", {4: (3, 2)}, {})
    path = tmp_path / "p.json"
    profile.save(path)
    assert InterleaveProfile.load(path).branches[4].executions == 3


def test_from_json_rejects_foreign_documents():
    with pytest.raises(ValueError):
        InterleaveProfile.from_json('{"format": "nope", "version": 1}')


def test_restricted_to_drops_branches_and_pairs():
    profile = _profile(
        "r", {1: (5, 0), 2: (5, 0), 3: (5, 0)},
        {(1, 2): 10, (2, 3): 20},
    )
    restricted = profile.restricted_to([1, 2])
    assert set(restricted.branches) == {1, 2}
    assert restricted.pairs == {pair_key(1, 2): 10}


def test_merge_sums_stats_and_pairs():
    a = _profile("a", {1: (10, 4), 2: (5, 5)}, {(1, 2): 100})
    b = _profile("b", {1: (20, 6), 3: (7, 0)}, {(1, 2): 50, (1, 3): 30})
    merged = merge_profiles([a, b], name="m")
    assert merged.name == "m"
    assert merged.instructions == 2000
    assert merged.branches[1].executions == 30
    assert merged.branches[1].taken == 10
    assert merged.branches[3].executions == 7
    assert merged.pairs[pair_key(1, 2)] == 150
    assert merged.pairs[pair_key(1, 3)] == 30


def test_merge_does_not_mutate_inputs():
    a = _profile("a", {1: (10, 4)}, {})
    merge_profiles([a, a])
    assert a.branches[1].executions == 10


def test_merge_requires_profiles():
    with pytest.raises(ValueError):
        merge_profiles([])


def test_coverage_against():
    a = _profile("a", {1: (10, 0)}, {})
    ref = _profile("ref", {1: (60, 0), 2: (40, 0)}, {})
    assert coverage_against(a, ref) == pytest.approx(0.6)
    empty_ref = _profile("e", {}, {})
    assert coverage_against(a, empty_ref) == 1.0
