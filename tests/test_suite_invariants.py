"""Cross-suite invariants: properties that must hold for every benchmark
analog, checked at test scale on the session runner."""

import pytest

from conftest import TEST_THRESHOLD
from repro.allocation.allocator import BranchAllocator
from repro.allocation.classified import (
    NOT_TAKEN_ENTRY,
    TAKEN_ENTRY,
    ClassifiedBranchAllocator,
)
from repro.allocation.conflict_cost import conflict_cost, conventional_cost
from repro.analysis.classification import BiasClass, classify_profile
from repro.analysis.conflict_graph import build_conflict_graph
from repro.analysis.working_sets import partition_working_sets
from repro.static_analysis import estimate_conflict_graph, lint_program
from repro.workloads.build import build_workload
from repro.workloads.suite import get_benchmark

# a representative cross-section: big/small, text/binary, search/numeric
BENCHMARKS = ["compress", "gcc", "chess", "pgp", "ss_a"]


@pytest.fixture(scope="module", params=BENCHMARKS)
def artifacts(request, runner):
    return runner.artifacts(request.param)


@pytest.fixture(scope="module")
def built(artifacts, runner):
    return build_workload(get_benchmark(artifacts.name, scale=runner.scale))


def test_profile_accounts_for_every_trace_event(artifacts):
    profile, trace = artifacts.profile, artifacts.trace
    assert profile.dynamic_branch_count == len(trace)
    taken_total = sum(s.taken for s in profile.branches.values())
    assert taken_total == int(trace.taken.sum())


def test_pair_counts_bounded_by_executions(artifacts):
    """Each re-execution of either branch adds at most one to the pair, so
    count(a,b) < executions(a) + executions(b)."""
    profile = artifacts.profile
    for (a, b), count in profile.pairs.items():
        bound = (
            profile.branches[a].executions + profile.branches[b].executions
        )
        assert 0 < count < bound, (hex(a), hex(b))


def test_timestamps_strictly_increase(artifacts):
    import numpy as np

    timestamps = artifacts.trace.timestamps.astype(np.int64)
    assert (np.diff(timestamps) > 0).all()


def test_working_sets_partition_the_graph(artifacts):
    graph = build_conflict_graph(
        artifacts.profile, threshold=TEST_THRESHOLD
    )
    partition = partition_working_sets(graph)
    covered = set()
    for ws in partition.sets:
        assert not (covered & ws.members)
        covered |= ws.members
    assert covered == set(graph.nodes())
    # execution weights in the partition account for every profiled
    # execution of graph nodes
    total_weight = sum(ws.execution_weight for ws in partition.sets)
    assert total_weight == sum(
        graph.node_weight(pc) for pc in graph.nodes()
    )


@pytest.mark.parametrize("bht_size", [64, 256, 1024])
def test_allocation_never_loses_to_conventional(artifacts, bht_size):
    allocator = BranchAllocator(
        artifacts.profile, threshold=TEST_THRESHOLD
    )
    allocated = allocator.allocate(bht_size)
    conventional = conventional_cost(allocator.graph, bht_size)
    assert allocated.cost <= conventional
    # the reported cost is reproducible from the assignment
    assert allocated.cost == conflict_cost(
        allocator.graph, allocated.assignment
    )
    assert all(
        0 <= entry < bht_size for entry in allocated.assignment.values()
    )


def test_classified_allocation_reserves_entries(artifacts):
    profile = artifacts.profile
    allocator = ClassifiedBranchAllocator(
        profile, threshold=TEST_THRESHOLD
    )
    result = allocator.allocate(64)
    classes = classify_profile(profile)
    for pc, entry in result.assignment.items():
        bias = classes.get(pc, BiasClass.MIXED)
        if bias is BiasClass.TAKEN_BIASED:
            assert entry == TAKEN_ENTRY
        elif bias is BiasClass.NOT_TAKEN_BIASED:
            assert entry == NOT_TAKEN_ENTRY
        else:
            assert entry >= 2


def test_every_benchmark_lints_clean(built):
    """Static verifier invariant: no analog ships with unreachable code,
    branches into data, fallthrough off text, or undefined-register reads."""
    report = lint_program(built.program)
    assert report.clean, report.render()


def test_static_graph_covers_every_profiled_branch(artifacts, built):
    """Every branch the simulator actually executed is a node of the
    static estimate (the static CFG misses nothing the trace visits)."""
    static_graph = estimate_conflict_graph(
        built.program, threshold=TEST_THRESHOLD
    )
    static_nodes = set(static_graph.nodes())
    profiled = set(artifacts.profile.branches)
    assert profiled <= static_nodes
    # and the estimate stays within the program's static branches
    assert static_nodes == set(
        built.program.static_conditional_branches()
    )


def test_rerun_is_bit_identical(runner, artifacts):
    """Re-simulating the same benchmark reproduces the trace exactly."""
    import numpy as np

    from repro.eval.runner import BenchmarkRunner

    fresh = BenchmarkRunner(scale=runner.scale)
    again = fresh.artifacts(artifacts.name)
    assert np.array_equal(again.trace.pcs, artifacts.trace.pcs)
    assert np.array_equal(again.trace.taken, artifacts.trace.taken)
    assert again.profile.pairs == artifacts.profile.pairs
