"""Interleave analysis tests.

The key correctness argument of the whole reproduction: the recency-stack
analyzer counts exactly the pairs the paper's Figure 1 time-stamp procedure
counts.  Tested on the paper's own worked example and, property-based, on
arbitrary random event streams against the literal brute-force
implementation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.interleave import (
    InterleaveAnalyzer,
    interleave_pairs_bruteforce,
    profile_trace,
)
from repro.trace.events import BranchEvent, BranchTrace

A, B, C = 0x100, 0x200, 0x300


def test_paper_figure1_example():
    """Figure 1: sequence A B C A with stamps 5/10/15/20.

    When A re-executes at stamp 20, branches B (10) and C (15) carry stamps
    greater than A's previous stamp (5), so pairs (A,B) and (A,C) are each
    counted once.
    """
    analyzer = InterleaveAnalyzer()
    for pc in [A, B, C, A]:
        analyzer.observe(pc)
    profile = analyzer.finish()
    assert profile.interleave_count(A, B) == 1
    assert profile.interleave_count(A, C) == 1
    assert profile.interleave_count(B, C) == 0  # neither re-executed


def test_repeated_loop_counts_accumulate():
    analyzer = InterleaveAnalyzer()
    for _ in range(10):
        analyzer.observe(A)
        analyzer.observe(B)
    profile = analyzer.finish()
    # nine re-executions of A each saw B, nine of B each saw A
    assert profile.interleave_count(A, B) == 18


def test_no_interleaving_when_runs_are_disjoint():
    analyzer = InterleaveAnalyzer()
    for _ in range(5):
        analyzer.observe(A)
    for _ in range(5):
        analyzer.observe(B)
    profile = analyzer.finish()
    # B executed only after A's last instance; A never re-executed after B
    assert profile.interleave_count(A, B) == 0


def test_consecutive_same_branch_is_not_self_interleaving():
    analyzer = InterleaveAnalyzer()
    for _ in range(100):
        analyzer.observe(A)
    profile = analyzer.finish()
    assert profile.pairs == {}
    assert profile.branches[A].executions == 100


def test_taken_statistics_accumulate():
    analyzer = InterleaveAnalyzer()
    analyzer.observe(A, taken=True)
    analyzer.observe(A, taken=False)
    analyzer.observe(A, taken=True)
    profile = analyzer.finish()
    assert profile.branches[A].executions == 3
    assert profile.branches[A].taken == 2
    assert profile.taken_rate(A) == pytest.approx(2 / 3)


def test_profile_trace_wrapper():
    trace = BranchTrace.from_events(
        [
            BranchEvent(A, 0, True, 5),
            BranchEvent(B, 0, False, 10),
            BranchEvent(C, 0, True, 15),
            BranchEvent(A, 0, True, 20),
        ],
        name="fig1",
    )
    profile = profile_trace(trace)
    assert profile.name == "fig1"
    assert profile.interleave_count(A, B) == 1
    assert profile.instructions == 20


def test_bruteforce_rejects_non_increasing_timestamps():
    with pytest.raises(ValueError):
        interleave_pairs_bruteforce([(A, 5), (B, 5)])


def test_simulator_hook_adapter_records_instructions():
    analyzer = InterleaveAnalyzer()
    analyzer.on_branch(A, 0, True, 123)
    assert analyzer.finish().instructions == 123


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=7),
        min_size=0,
        max_size=200,
    )
)
def test_recency_stack_equals_bruteforce(event_pcs):
    """The O(stack distance) analyzer and the paper's literal O(statics)
    timestamp scan agree on arbitrary event streams."""
    events = [(0x1000 + 4 * pc, 3 * i + 1) for i, pc in enumerate(event_pcs)]
    expected = interleave_pairs_bruteforce(events)
    analyzer = InterleaveAnalyzer()
    for pc, _ in events:
        analyzer.observe(pc)
    assert analyzer.finish().pairs == expected


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=3),
        min_size=2,
        max_size=100,
    )
)
def test_pair_counts_are_symmetric_and_positive(event_pcs):
    analyzer = InterleaveAnalyzer()
    for pc in event_pcs:
        analyzer.observe(0x40 + 4 * pc)
    profile = analyzer.finish()
    for (low, high), count in profile.pairs.items():
        assert low < high
        assert count > 0
        assert profile.interleave_count(high, low) == count
