"""Fault injection against the real daemon: crash, drain, recovery.

Everything here boots ``repro serve`` as a subprocess (a real process
group, real signals, real unix sockets) and drives it with a small
synchronous NDJSON client.  The acceptance property is the crash-safe
job lifecycle: a daemon SIGKILLed with jobs in flight must, on restart,
resume those jobs from the service journal + checkpoint store and
produce artifacts byte-identical to a run that was never disturbed.

Also covered: SIGTERM drain (interrupted frames, exit 0, resumable
orphans), an injected ``worker_kill`` fault retried *inside* the daemon,
and the loadgen client-side fault modes (``conn_drop``/``slow_client``).
"""

import json
import os
import signal
import socket as socketlib
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.eval.engine import ExecutionEngine
from repro.eval.faults import FaultPlan
from repro.service import (
    LoadgenConfig,
    ServiceJournal,
    decode_frame,
    encode_frame,
    run_loadgen,
)

pytestmark = pytest.mark.faults

REPO = Path(__file__).resolve().parent.parent
SCALE = 0.05
TERMINAL = ("completed", "failed", "cancelled", "interrupted", "rejected")


def short_socket_dir():
    """Unix socket paths are capped (~108 bytes); stay under /tmp."""
    return Path(tempfile.mkdtemp(prefix="repro-svcf-", dir="/tmp"))


def daemon_env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    if extra:
        env.update(extra)
    return env


def start_daemon(socket_path, cache_dir, *flags, env=None):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(socket_path), "--cache", str(cache_dir),
         *flags],
        env=env or daemon_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    # readiness = answering a ping, not the socket file existing: a
    # SIGKILLed predecessor leaves a stale socket file behind, and the
    # restarted daemon only unlinks + rebinds it once it is actually up
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon died at boot (rc {proc.returncode}): "
                f"{proc.stderr.read().decode()}"
            )
        try:
            talk(
                socket_path, [{"op": "ping"}],
                lambda f: f.get("type") == "pong", timeout=5.0,
            )
            return proc
        except (OSError, AssertionError):
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never answered a ping")


def stop_daemon(proc, timeout=120):
    """SIGTERM drain; the daemon must exit 0 on its own."""
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("daemon did not drain after SIGTERM")
    assert rc == 0, proc.stderr.read().decode()


def talk(socket_path, frames, stop, timeout=240.0):
    """Send *frames*, read replies until ``stop(reply)``; returns all."""
    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(str(socket_path))
    got = []
    try:
        for frame in frames:
            sock.sendall(encode_frame(frame))
        with sock.makefile("rb") as fh:
            while True:
                line = fh.readline()
                assert line, f"daemon hung up early: {got}"
                reply = decode_frame(line)
                got.append(reply)
                if stop(reply):
                    return got
    finally:
        sock.close()


def stats(socket_path):
    (frame,) = talk(
        socket_path, [{"op": "stats"}],
        lambda f: f.get("type") == "stats", timeout=30.0,
    )
    return frame


def submit(benchmark, job_id, scale=SCALE, **fields):
    frame = {"op": "submit", "id": job_id, "benchmark": benchmark,
             "scale": scale}
    frame.update(fields)
    return frame


def artifact_bytes(cache_dir, name):
    """Every stored artifact byte for *name* (trace, profile, meta)."""
    files = {
        path.name: path.read_bytes()
        for path in Path(cache_dir).glob(f"{name}-*")
        if path.is_file() and not path.name.endswith(".claim")
    }
    assert files, f"no stored artifacts for {name} in {cache_dir}"
    return files


def journal_statuses(cache_dir):
    journal = ServiceJournal(Path(cache_dir) / "service")
    done = {}
    for record in journal.records():
        if record.get("kind") == "done":
            done[record["job"]] = record["status"]
    return done


def wait_for_done(cache_dir, job_ids, timeout=240.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = journal_statuses(cache_dir)
        if all(job_id in done for job_id in job_ids):
            return done
        time.sleep(0.1)
    raise AssertionError(
        f"jobs {job_ids} never finished; journal says "
        f"{journal_statuses(cache_dir)}"
    )


def test_daemon_sigkill_midflight_then_restart_is_byte_identical():
    """The acceptance property: SIGKILL the daemon with two jobs in
    flight; the restarted daemon re-enqueues the journal orphans,
    resumes them from their checkpoints, and the artifacts match an
    undisturbed daemon's byte for byte."""
    root = short_socket_dir()
    jobs = [("plot", "job-plot"), ("compress", "job-compress")]

    # undisturbed run: the ground truth artifacts
    clean_sock = root / "clean.sock"
    clean_cache = root / "clean-cache"
    proc = start_daemon(clean_sock, clean_cache, "--workers", "2")
    try:
        frames = talk(
            clean_sock,
            [submit(name, job_id) for name, job_id in jobs],
            _both_done([job_id for _, job_id in jobs]),
        )
        assert all(
            f["type"] == "completed"
            for f in frames if f.get("type") in TERMINAL
        )
    finally:
        stop_daemon(proc)
    clean = {
        name: artifact_bytes(clean_cache, name) for name, _ in jobs
    }

    # crash run: SIGKILL once both jobs are running and checkpointed
    crash_sock = root / "crash.sock"
    crash_cache = root / "crash-cache"
    proc = start_daemon(
        crash_sock, crash_cache, "--workers", "2",
        "--checkpoint-every", "500",
    )
    talk(
        crash_sock,
        [submit(name, job_id) for name, job_id in jobs],
        _accepted_count(2),
    )
    ckpt_dir = crash_cache / "checkpoints"
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        frame = stats(crash_sock)
        checkpoints = list(ckpt_dir.glob("*.ckpt"))
        if frame["running"] == 2 and len(checkpoints) >= 2:
            break
        if frame["jobs"]["completed"] == 2:
            pytest.skip("jobs finished before the kill window")
        time.sleep(0.05)
    else:
        raise AssertionError("both jobs never got in flight together")
    proc.kill()  # SIGKILL: no drain, no journal flush, no cleanup
    proc.wait(timeout=30)
    assert journal_statuses(crash_cache) == {}  # nothing terminal

    # restart on the same cache: recovery must finish both jobs
    proc = start_daemon(
        crash_sock, crash_cache, "--workers", "2",
        "--checkpoint-every", "500",
    )
    try:
        frame = stats(crash_sock)
        assert frame["jobs"]["recovered"] == 2
        done = wait_for_done(
            crash_cache, [job_id for _, job_id in jobs]
        )
        assert set(done.values()) == {"completed"}
        journal = ServiceJournal(crash_cache / "service")
        assert journal.orphans() == []
    finally:
        stop_daemon(proc)

    for name, _ in jobs:
        assert artifact_bytes(crash_cache, name) == clean[name]


def _accepted_count(want):
    seen = []

    def stop(frame):
        if frame.get("type") == "accepted":
            seen.append(frame)
        elif frame.get("type") == "rejected":
            raise AssertionError(f"unexpected rejection: {frame}")
        return len(seen) >= want

    return stop


def _both_done(job_ids):
    seen = set()

    def stop(frame):
        if frame.get("type") in TERMINAL and frame.get("id") in job_ids:
            seen.add(frame["id"])
        return seen == set(job_ids)

    return stop


def test_daemon_sigterm_drains_interrupts_and_resumes_on_restart():
    """SIGTERM mid-job: the client gets a typed ``interrupted`` frame
    (resumable), the daemon exits 0, the job stays a journal orphan,
    and the restarted daemon finishes it."""
    import threading

    root = short_socket_dir()
    sock = root / "svc.sock"
    cache = root / "cache"
    proc = start_daemon(
        sock, cache, "--workers", "1", "--checkpoint-every", "500",
    )
    frames = []
    client = threading.Thread(
        target=lambda: frames.extend(
            talk(
                sock,
                [submit("plot", "job-drain", scale=0.3)],
                lambda f: f.get("type") in TERMINAL,
            )
        )
    )
    client.start()
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if stats(sock)["running"] == 1:
                break
            time.sleep(0.02)
        else:
            raise AssertionError("job never started running")
        time.sleep(0.2)  # let the worker make checkpointable progress
    finally:
        stop_daemon(proc)  # SIGTERM; must still exit 0
    client.join(timeout=60)
    assert not client.is_alive()
    terminal = [f for f in frames if f.get("type") in TERMINAL]
    assert len(terminal) == 1
    if terminal[0]["type"] == "completed":
        pytest.skip("job finished before the drain window")
    assert terminal[0]["type"] == "interrupted"
    assert terminal[0]["resumable"] is True
    assert terminal[0]["error"]["code"] == "job_interrupted"

    # the interrupted job is an orphan: restart resumes and finishes it
    journal = ServiceJournal(cache / "service")
    assert [r["job"] for r in journal.orphans()] == ["job-drain"]
    proc = start_daemon(
        sock, cache, "--workers", "1", "--checkpoint-every", "500",
    )
    try:
        assert stats(sock)["jobs"]["recovered"] == 1
        done = wait_for_done(cache, ["job-drain"])
        assert done["job-drain"] == "completed"
    finally:
        stop_daemon(proc)
    assert ServiceJournal(cache / "service").orphans() == []


def test_injected_worker_kill_is_retried_inside_the_daemon():
    """A worker SIGKILLed mid-simulation (injected fault) is retried by
    the daemon; the retry resumes the dead attempt's checkpoint and the
    artifacts match a clean engine run byte for byte."""
    root = short_socket_dir()
    sock = root / "svc.sock"
    cache = root / "cache"
    plan = FaultPlan(
        worker_kill={"plot": 12_000}, state_dir=str(root / "state"),
    )
    proc = start_daemon(
        sock, cache, "--workers", "1", "--retries", "2",
        "--checkpoint-every", "4000",
        env=daemon_env({"REPRO_FAULTS": plan.to_json()}),
    )
    try:
        frames = talk(
            sock,
            [submit("plot", "job-killed")],
            lambda f: f.get("type") in TERMINAL,
        )
    finally:
        stop_daemon(proc)
    done = frames[-1]
    assert done["type"] == "completed", done
    assert done["attempts"] == 2  # the kill cost exactly one attempt
    assert done["resumed"] is True
    assert done["checkpoints_written"] > 0

    engine = ExecutionEngine(cache_dir=root / "clean-cache", scale=SCALE)
    engine.prefetch(["plot"])
    assert artifact_bytes(cache, "plot") == artifact_bytes(
        root / "clean-cache", "plot"
    )


def test_loadgen_fault_modes_drop_connections_but_not_jobs():
    """``conn_drop`` clients vanish after their accepted frame and
    ``slow_client`` clients trickle their submit in two writes; neither
    may fail a job server-side."""
    root = short_socket_dir()
    sock = root / "svc.sock"
    cache = root / "cache"
    proc = start_daemon(sock, cache, "--workers", "2")
    plan = FaultPlan(
        slow_client=4, slow_client_seconds=0.05, conn_drop=3,
    )
    config = LoadgenConfig(
        socket_path=str(sock),
        rate=50.0,
        jobs=6,
        benchmarks=("plot",),
        tenants=("tenant-0", "tenant-1"),
        scale=SCALE,
    )
    try:
        report = run_loadgen(config, plan=plan)
    finally:
        stop_daemon(proc)
    # requests 2 and 5 drop ((i+1) % 3 == 0); everyone else completes
    assert report["dropped"] == 2
    assert report["completed"] == 4
    assert report["failed"] == 0
    assert report["client_errors"] == 0
    assert report["shed_rate"] == 0.0
    # the dropped clients' jobs still ran to completion server-side:
    # every journaled job has a terminal ``completed`` record
    statuses = journal_statuses(cache)
    assert statuses and set(statuses.values()) == {"completed"}
    assert ServiceJournal(cache / "service").orphans() == []
    # six identical submits collapse onto one simulation
    service_jobs = report["service"]["jobs"]
    assert service_jobs["simulated"] == 1
    assert service_jobs["deduped"] == 5
    assert report["cache_hit_ratio"] == pytest.approx(5 / 6)


def test_loadgen_cli_emits_report_envelope():
    """``repro loadgen --json`` against a live daemon: a machine-
    readable envelope with the BENCH_service.json report shape."""
    root = short_socket_dir()
    sock = root / "svc.sock"
    cache = root / "cache"
    proc = start_daemon(sock, cache, "--workers", "2")
    try:
        result = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen",
             "--socket", str(sock), "--rate", "20", "--jobs", "4",
             "--benchmarks", "plot", "--scale", str(SCALE),
             "--predictors", "bimodal:512", "--json"],
            env=daemon_env(), capture_output=True, timeout=300,
        )
    finally:
        stop_daemon(proc)
    assert result.returncode == 0, result.stderr.decode()
    envelope = json.loads(result.stdout.decode())
    assert envelope["command"] == "loadgen"
    report = envelope["results"]
    assert report["completed"] == 4
    assert report["failed"] == 0
    for key in ("jobs_per_sec", "latency_p50_s", "latency_p99_s",
                "shed_rate", "cache_hit_ratio"):
        assert key in report
