"""Dataflow engine tests: solver behaviour and the shipped instances.

The load-bearing property is order independence: every shipped problem
is monotone over a finite lattice, so the worklist fixpoint must be
identical under any initial iteration order — pinned here with
hypothesis-shuffled orders.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.static_analysis import build_cfg
from repro.static_analysis.dataflow import (
    ENTRY_DEFINED_MASK,
    UNKNOWN,
    VARYING,
    ConstantPropagation,
    DataflowProblem,
    Direction,
    IntervalPropagation,
    LiveRegisters,
    MustDefinedRegisters,
    ReachingDefinitions,
    instruction_defs,
    instruction_reads,
    mask_of,
    solve,
)

T0, T1, S0, A0 = 5, 6, 8, 10

DIAMOND = """
main:
    addi s0, zero, 7
    beq a0, zero, right
left:
    addi t0, zero, 1
    jal zero, join
right:
    addi t1, zero, 2
join:
    addi s1, s0, 1
    halt
"""

LOOPY = """
main:
    addi s0, zero, 3
outer:
    addi s1, zero, 5
inner:
    beq a0, zero, skip
    addi t0, zero, 1
skip:
    addi s1, s1, -1
    bne s1, zero, inner
    call helper
    addi s0, s0, -1
    bne s0, zero, outer
    halt
helper:
    beq a1, zero, out
    addi t1, zero, 9
out:
    ret
"""


def cfg_of(source):
    return build_cfg(assemble(source))


# --------------------------------------------------------------------------- #
# instruction helpers
# --------------------------------------------------------------------------- #


def test_instruction_reads_and_defs():
    program = assemble(
        """
        main:
            addi t0, zero, 1
            add t1, t0, a0
            beq t1, t0, main
            halt
        """
    )
    addi, add, beq, _ = program.instructions
    assert instruction_reads(addi) == (0,)
    assert instruction_defs(addi) == (T0,)
    assert set(instruction_reads(add)) == {T0, A0}
    assert instruction_defs(add) == (T1,)
    assert set(instruction_reads(beq)) == {T0, T1}
    assert instruction_defs(beq) == ()


def test_writes_to_zero_register_define_nothing():
    program = assemble("main:\n    jal zero, main\n")
    assert instruction_defs(program.instructions[0]) == ()


# --------------------------------------------------------------------------- #
# must-defined registers (forward, intersection)
# --------------------------------------------------------------------------- #


def test_must_defined_intersects_at_joins():
    cfg = cfg_of(DIAMOND)
    result = solve(cfg, MustDefinedRegisters(cfg))
    join = cfg.block_at_address(cfg.program.symbols["join"]).index
    state = result.state_before(join)
    # s0 is written before the split: defined on every path
    assert state & (1 << S0)
    # t0 and t1 are each written on only one arm: not must-defined
    assert not state & (1 << T0)
    assert not state & (1 << T1)


def test_entry_block_starts_from_entry_mask():
    cfg = cfg_of(DIAMOND)
    result = solve(cfg, MustDefinedRegisters(cfg))
    assert result.state_before(cfg.entry) == ENTRY_DEFINED_MASK


# --------------------------------------------------------------------------- #
# liveness (backward, union)
# --------------------------------------------------------------------------- #


def test_liveness_carries_use_back_through_both_arms():
    cfg = cfg_of(DIAMOND)
    result = solve(cfg, LiveRegisters())
    # s0 is read at the join, so it is live out of both arms and the
    # entry block
    for label in ("left", "right"):
        block = cfg.block_at_address(cfg.program.symbols[label]).index
        assert result.state_after(block) & (1 << S0)
    assert result.state_after(cfg.entry) & (1 << S0)


def test_dead_temporary_is_not_live():
    cfg = cfg_of(
        """
        main:
            addi t0, zero, 1
            addi s0, zero, 2
            halt
        """
    )
    result = solve(cfg, LiveRegisters())
    # nothing ever reads t0: not live anywhere
    assert not result.state_before(cfg.entry) & (1 << T0)


# --------------------------------------------------------------------------- #
# reaching definitions
# --------------------------------------------------------------------------- #


def test_both_arm_definitions_reach_the_join():
    source = """
    main:
        beq a0, zero, right
    left:
        addi t0, zero, 1
        jal zero, join
    right:
        addi t0, zero, 2
    join:
        add s0, t0, zero
        halt
    """
    cfg = cfg_of(source)
    problem = ReachingDefinitions(cfg)
    result = solve(cfg, problem)
    join = cfg.block_at_address(cfg.program.symbols["join"]).index
    sites = problem.sites_reaching(result.state_before(join), T0)
    # one definition per arm; the entry pseudo-def is killed by both
    left = cfg.program.symbols["left"]
    right = cfg.program.symbols["right"]
    indices = {cfg.program.index_of(left), cfg.program.index_of(right)}
    assert set(sites) == indices


# --------------------------------------------------------------------------- #
# constant and interval propagation
# --------------------------------------------------------------------------- #


def test_constants_fold_through_straight_line_code():
    cfg = cfg_of(
        """
        main:
            addi t0, zero, 4
            addi t0, t0, 3
            add t1, t0, t0
            halt
        """
    )
    result = solve(cfg, ConstantPropagation())
    exit_state = result.state_after(cfg.entry)
    assert exit_state[T0] == 7
    assert exit_state[T1] == 14


def test_conflicting_constants_meet_to_varying():
    cfg = cfg_of(DIAMOND)
    result = solve(cfg, ConstantPropagation())
    join = cfg.block_at_address(cfg.program.symbols["join"]).index
    state = result.state_before(join)
    assert state[S0] == 7          # same on both paths
    assert state[T0] is VARYING    # written on one arm only
    assert state[0] == 0           # the zero register is always 0


def test_constant_meet_value_lattice():
    meet = ConstantPropagation.meet_values
    assert meet(UNKNOWN, 3) == 3
    assert meet(3, UNKNOWN) == 3
    assert meet(3, 3) == 3
    assert meet(3, 4) is VARYING
    assert meet(VARYING, 3) is VARYING


def test_interval_bounds_join_of_two_constants():
    cfg = cfg_of(DIAMOND)
    result = solve(cfg, IntervalPropagation())
    join = cfg.block_at_address(cfg.program.symbols["join"]).index
    state = result.state_before(join)
    lo, hi = state[S0]
    assert (lo, hi) == (7, 7)
    # t1 is 2 on one arm, undefined-but-entry VARYING on the other path?
    # no: t1 is a temporary, unknown at entry -> full range after meet
    # with the defining arm; the bound we can rely on is s0's.


# --------------------------------------------------------------------------- #
# solver behaviour
# --------------------------------------------------------------------------- #


class _Oscillator(DataflowProblem):
    """Deliberately non-monotone: produces a fresh state every visit, so
    blocks on a cycle requeue each other forever."""

    direction = Direction.FORWARD

    def __init__(self):
        self.ticks = 0

    def initial(self, cfg, block_id):
        return 0

    def meet(self, a, b):
        return max(a, b)

    def transfer(self, cfg, block, state):
        self.ticks += 1
        return self.ticks


def test_non_monotone_problem_exhausts_visit_budget():
    cfg = cfg_of(LOOPY)
    with pytest.raises(RuntimeError, match="non-monotone"):
        solve(cfg, _Oscillator())


def _states_of(result):
    return (dict(result.in_states), dict(result.out_states))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fixpoint_is_independent_of_worklist_order(seed):
    """The published guarantee: any iteration order, same fixpoint."""
    cfg = cfg_of(LOOPY)
    order = sorted(cfg.reachable_blocks())
    random.Random(seed).shuffle(order)
    problems = [
        lambda: MustDefinedRegisters(cfg),
        LiveRegisters,
        lambda: ReachingDefinitions(cfg),
        ConstantPropagation,
        IntervalPropagation,
    ]
    for make in problems:
        baseline = _states_of(solve(cfg, make()))
        shuffled = _states_of(solve(cfg, make(), order=order))
        assert shuffled == baseline


def test_mask_of_builds_bitmasks():
    assert mask_of(()) == 0
    assert mask_of((0, 1, 5)) == 0b100011
