"""Fault injection and recovery: the engine's failure paths, on purpose.

Every test here damages something — a cache entry, a worker process, a
job's first attempts — and asserts the engine degrades instead of
crashing: corruption quarantines and resimulates, crashes and hangs
become typed per-benchmark failures, experiments run on the survivors.
"""

import json

import pytest

from repro.__main__ import main
from repro.errors import (
    ArtifactCorrupt,
    JobFailed,
    JobTimeout,
    ReproError,
    SuiteDegraded,
)
from repro.eval.engine import ArtifactStore, ExecutionEngine, JobResult, JobSpec
from repro.eval.experiments import (
    EXPERIMENTS,
    Experiment,
    format_failure_report,
    run_all_experiments,
    run_experiment,
)
from repro.eval.faults import ENV_VAR, FaultPlan, InjectedFault, corrupt_file
from repro.schema import SCHEMA_VERSION

pytestmark = pytest.mark.faults

#: Small enough to keep each simulation around a second.
SCALE = 0.05
SUBSET = ["plot", "pgp", "compress"]

#: Fast retry backoff so retry tests don't sleep for real.
BACKOFF = 0.01


def make_engine(tmp_path, **kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("retry_backoff", BACKOFF)
    return ExecutionEngine(cache_dir=tmp_path / "cache", **kwargs)


# -- corrupted store entries ------------------------------------------------


@pytest.mark.parametrize("victim", ["trace", "meta"])
def test_corrupt_entry_is_quarantined_and_resimulated(tmp_path, victim):
    cold = make_engine(tmp_path)
    cold.artifacts("plot")
    spec, digest = cold.job("plot"), cold.digest("plot")
    trace_path, _, meta_path = cold.store.paths(spec, digest)
    corrupt_file(trace_path if victim == "trace" else meta_path)

    fresh = make_engine(tmp_path)
    artifacts = fresh.artifacts("plot")
    assert artifacts.profile.pairs  # real artifacts came back
    assert fresh.stats.simulated == 1
    assert fresh.stats.store_hits == 0
    assert fresh.stats.quarantined >= 1
    assert not fresh.failures

    quarantine = tmp_path / "cache" / ArtifactStore.QUARANTINE_DIR
    names = {p.name for p in quarantine.iterdir()}
    assert any(n.endswith(".trace.npz") for n in names)
    # the resimulated entry is back in the store and verifies clean
    warm = make_engine(tmp_path)
    warm.artifacts("plot")
    assert warm.stats.store_hits == 1
    assert warm.stats.quarantined == 0


def test_store_load_never_raises_on_garbage(tmp_path):
    store = ArtifactStore(tmp_path)
    spec = JobSpec("plot", scale=SCALE)
    digest = "ab" * 32
    trace_path, profile_path, meta_path = store.paths(spec, digest)
    trace_path.write_bytes(b"\x00not a zip")
    profile_path.write_text("{}", encoding="utf-8")
    meta_path.write_text("{not json", encoding="utf-8")

    assert store.load(spec, digest) is None
    assert len(store.corrupt_events) == 1
    event = store.corrupt_events[0]
    assert event.code == "artifact_corrupt"
    assert event.context["benchmark"] == "plot"
    # the bad files were moved aside: the entry now reads as a plain miss
    assert not store.contains(spec, digest)
    moved = {p.name for p in (tmp_path / store.QUARANTINE_DIR).iterdir()}
    assert trace_path.name in moved and meta_path.name in moved


def test_store_put_leaves_no_stage_litter(tmp_path):
    engine = make_engine(tmp_path)
    engine.artifacts("plot")
    assert not list((tmp_path / "cache").glob(".stage-*"))


def test_persistent_corruption_fails_benchmark_not_pass(tmp_path):
    """A plan that re-corrupts every freshly stored trace must yield a
    recorded ArtifactCorrupt failure, never an aborted prefetch."""
    plan = FaultPlan(corrupt_trace=("plot",))
    with plan.installed():
        engine = make_engine(tmp_path, retries=0)
        got = engine.prefetch(["plot", "pgp"])
    assert set(got) == {"pgp"}
    assert isinstance(engine.failures["plot"], ArtifactCorrupt)
    assert engine.stats.failed == 1
    assert engine.stats.quarantined >= 1

    # a clean engine over the same store recovers everything
    clean = make_engine(tmp_path)
    assert set(clean.prefetch(["plot", "pgp"])) == {"plot", "pgp"}
    assert not clean.failures


# -- crashed / flaky / hung workers ----------------------------------------


def test_worker_crash_is_isolated_in_parallel(tmp_path):
    plan = FaultPlan(worker_crash=("pgp",))
    with plan.installed():
        engine = make_engine(tmp_path, jobs=4, retries=0)
        got = engine.prefetch(SUBSET)
    assert set(got) == {"plot", "compress"}
    failure = engine.failures["pgp"]
    assert isinstance(failure, JobFailed)
    assert failure.context["exit_code"] == 13
    assert engine.stats.failed == 1
    assert engine.stats.job_source["pgp"] == "failed"
    # survivors produced real artifacts despite the dead worker
    assert engine.artifacts("plot").profile.pairs


def test_in_process_crash_raises_and_memoises_failure(tmp_path):
    plan = FaultPlan(worker_crash=("plot",))
    with plan.installed():
        engine = make_engine(tmp_path, retries=0)
        engine.prefetch(["plot"])
        failure = engine.failures["plot"]
        assert failure.code == "job_failed"
        assert failure.context["cause"]["code"] == "injected_fault"
        with pytest.raises(JobFailed):
            engine.artifacts("plot")
    # invalidate clears the failure; the next (clean) access retries
    engine.invalidate("plot")
    assert engine.artifacts("plot").profile.pairs
    assert not engine.failures


def test_flaky_job_succeeds_after_retry(tmp_path):
    plan = FaultPlan(flaky={"plot": 1}, state_dir=str(tmp_path / "state"))
    with plan.installed():
        engine = make_engine(tmp_path, retries=2)
        artifacts = engine.artifacts("plot")
    assert artifacts.profile.pairs
    assert engine.stats.retried >= 1
    assert engine.stats.failed == 0
    assert not engine.failures


def test_flaky_job_exhausts_retries(tmp_path):
    plan = FaultPlan(flaky={"plot": 5}, state_dir=str(tmp_path / "state"))
    with plan.installed():
        engine = make_engine(tmp_path, retries=1)
        engine.prefetch(["plot"])
    failure = engine.failures["plot"]
    assert isinstance(failure, JobFailed)
    assert failure.context["attempts"] == 2
    assert engine.stats.retried == 1
    assert engine.stats.failed == 1


def test_hung_worker_times_out(tmp_path):
    # the budget must comfortably cover pgp's honest run (worker spawn
    # included) on a loaded machine while staying far below the hang
    plan = FaultPlan(worker_hang=("plot",), hang_seconds=30.0)
    with plan.installed():
        engine = make_engine(tmp_path, jobs=2, timeout=5.0, retries=0)
        got = engine.prefetch(["plot", "pgp"])
    assert set(got) == {"pgp"}
    failure = engine.failures["plot"]
    assert isinstance(failure, JobTimeout)
    assert failure.context["timeout_seconds"] == 5.0
    assert engine.stats.timeouts == 1
    assert engine.stats.failed == 1


# -- _absorb invariants -----------------------------------------------------


def test_absorb_without_store_requires_artifacts():
    engine = ExecutionEngine(scale=SCALE)
    orphan = JobResult(
        spec=JobSpec("plot", scale=SCALE), digest="x" * 64,
        source="simulated", seconds=0.0,
    )
    with pytest.raises(ReproError, match="no store is configured"):
        engine._absorb(orphan)


def test_absorb_resimulates_missing_store_entry(tmp_path):
    engine = make_engine(tmp_path)
    result = JobResult(
        spec=engine.job("plot"), digest=engine.digest("plot"),
        source="store", seconds=0.0,
    )
    engine._absorb(result)  # store is empty: must rerun inline
    assert engine.stats.job_source["plot"] == "resimulated"
    assert engine.artifacts("plot").profile.pairs


def test_absorb_records_failure_when_store_keeps_losing(tmp_path, monkeypatch):
    engine = make_engine(tmp_path)
    monkeypatch.setattr(ArtifactStore, "load", lambda self, spec, digest: None)
    result = JobResult(
        spec=engine.job("plot"), digest=engine.digest("plot"),
        source="store", seconds=0.0,
    )
    absorbed = engine._absorb(result)
    assert absorbed.source == "failed"
    assert isinstance(engine.failures["plot"], ArtifactCorrupt)


# -- graceful experiment degradation ---------------------------------------


@pytest.fixture
def tiny_experiment(monkeypatch):
    """A registry entry whose run is just the surviving benchmark list."""
    exp = Experiment(
        "tiny_demo", "demo", "fault-injection test experiment",
        lambda runner, benchmarks: "survivors: " + ",".join(benchmarks),
        ("plot", "pgp"),
    )
    monkeypatch.setitem(EXPERIMENTS, exp.id, exp)
    return exp


def test_experiment_runs_on_survivors(tmp_path, tiny_experiment):
    plan = FaultPlan(worker_crash=("plot",))
    with plan.installed():
        engine = make_engine(tmp_path, retries=0)
        out = run_experiment("tiny_demo", engine)
    assert "survivors: pgp" in out
    assert "-- degraded: 1 benchmark(s) failed --" in out
    assert "plot: job_failed" in out


def test_experiment_with_zero_survivors_degrades(tmp_path, tiny_experiment):
    plan = FaultPlan(worker_crash=("plot", "pgp"))
    with plan.installed():
        engine = make_engine(tmp_path, retries=0)
        with pytest.raises(SuiteDegraded) as excinfo:
            run_experiment("tiny_demo", engine)
    failures = excinfo.value.context["failures"]
    assert {f["benchmark"] for f in failures} == {"plot", "pgp"}
    assert excinfo.value.code == "suite_degraded"


def test_run_all_experiments_raises_when_nothing_survives(tmp_path):
    every = {n for exp in EXPERIMENTS.values() for n in exp.benchmarks}
    plan = FaultPlan(worker_crash=tuple(sorted(every)))
    with plan.installed():
        engine = make_engine(tmp_path, retries=0)
        with pytest.raises(SuiteDegraded):
            run_all_experiments(engine)
    assert set(engine.failures) == every


def test_failure_report_formatting():
    report = format_failure_report(
        {"gcc": JobTimeout("gcc blew its budget", benchmark="gcc")}
    )
    assert report.splitlines()[0] == "-- degraded: 1 benchmark(s) failed --"
    assert "gcc: job_timeout — gcc blew its budget" in report


# -- fault plan plumbing ----------------------------------------------------


def test_fault_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        worker_crash=("a",), worker_hang=("b",), flaky={"c": 2},
        corrupt_trace=("d",), corrupt_meta=("e",), hang_seconds=3.5,
        state_dir=str(tmp_path),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_fault_plan_installed_restores_environment(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    plan = FaultPlan(worker_crash=("x",))
    with plan.installed():
        import os

        assert ENV_VAR in os.environ
        with pytest.raises(InjectedFault):
            plan.on_job_start("x", in_worker=False)
    import os

    assert ENV_VAR not in os.environ


def test_flaky_plan_requires_state_dir():
    with pytest.raises(ValueError, match="state_dir"):
        FaultPlan(flaky={"plot": 1})


def test_corrupt_file_flips_bytes(tmp_path):
    path = tmp_path / "blob"
    original = bytes(range(256))
    path.write_bytes(original)
    corrupt_file(path)
    damaged = path.read_bytes()
    assert len(damaged) == len(original)
    assert damaged != original


# -- CLI --------------------------------------------------------------------


def run_cli(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


def test_cli_faults_demo_recovers(tmp_path, capsys):
    code, out = run_cli(capsys, [
        "faults", "--benchmarks", "plot,pgp", "--scale", "0.03",
        "--jobs", "2", "--retries", "0", "--json",
    ])
    assert code == 0
    doc = json.loads(out)
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["command"] == "faults"
    results = doc["results"]
    # the default demo crashes the first benchmark and corrupts the last
    failed = {f["benchmark"] for f in results["failures"]}
    assert failed == {"plot", "pgp"}
    assert results["recovered"] == ["pgp", "plot"]
    assert results["recovery"]["failed"] == 0


def test_cli_experiment_degrades_to_survivors(
    tmp_path, capsys, tiny_experiment, monkeypatch
):
    """The acceptance scenario: a poisoned parallel run completes, reports
    the failure in the envelope, and a clean rerun fully recovers."""
    plan = FaultPlan(worker_crash=("pgp",))
    monkeypatch.setenv(ENV_VAR, plan.to_json())
    cache = str(tmp_path / "cache")
    argv = [
        "experiment", "tiny_demo", "--scale", "0.03", "--jobs", "4",
        "--cache", cache, "--retries", "0", "--json",
    ]
    code, out = run_cli(capsys, argv)
    assert code == 0
    results = json.loads(out)["results"]
    assert "survivors: plot" in results["output"]
    assert [f["benchmark"] for f in results["failures"]] == ["pgp"]
    assert results["engine"]["failed"] == 1

    monkeypatch.delenv(ENV_VAR)
    code, out = run_cli(capsys, argv)
    assert code == 0
    results = json.loads(out)["results"]
    assert results["failures"] == []
    assert "survivors: plot,pgp" in results["output"]
    assert results["engine"]["store_hits"] == 1  # plot came from the cache


def test_cli_experiment_exits_nonzero_only_when_all_fail(
    tmp_path, capsys, tiny_experiment, monkeypatch
):
    plan = FaultPlan(worker_crash=("plot", "pgp"))
    monkeypatch.setenv(ENV_VAR, plan.to_json())
    code, out = run_cli(capsys, [
        "experiment", "tiny_demo", "--scale", "0.03",
        "--retries", "0", "--json",
    ])
    assert code == 1
    results = json.loads(out)["results"]
    assert results["degraded"]["code"] == "suite_degraded"
    assert {f["benchmark"] for f in results["failures"]} == {"plot", "pgp"}
