"""Static analysis tests: CFG construction, dominators, natural loops and
the profile-free conflict estimator."""

import pytest

from repro.allocation.allocator import BranchAllocator
from repro.asm.assembler import assemble
from repro.static_analysis import (
    VIRTUAL_ROOT,
    StaticConflictEstimator,
    build_cfg,
    compute_dominators,
    estimate_conflict_graph,
    find_loops,
)


def cfg_of(source: str):
    return build_cfg(assemble(source))


# --------------------------------------------------------------------------- #
# CFG construction
# --------------------------------------------------------------------------- #


def test_straight_line_program_is_one_block():
    cfg = cfg_of(
        """
        main:
            addi t0, zero, 1
            addi t0, t0, 1
            halt
        """
    )
    assert cfg.block_count == 1
    assert cfg.blocks[0].successors == ()
    assert cfg.terminator(cfg.blocks[0]).is_halt
    assert cfg.entry == 0


def test_empty_program_has_single_empty_block():
    cfg = build_cfg(assemble(""))
    assert cfg.block_count == 1
    assert len(cfg.blocks[0]) == 0
    assert cfg.blocks[0].successors == ()


def test_conditional_branch_splits_blocks_and_edges():
    cfg = cfg_of(
        """
        main:
            beq a0, zero, done
            addi t0, zero, 1
        done:
            halt
        """
    )
    # blocks: [beq], [addi], [halt]
    assert cfg.block_count == 3
    branch_block = cfg.blocks[0]
    assert set(branch_block.successors) == {1, 2}
    assert cfg.predecessors[2] == (0, 1)


def test_program_ending_in_conditional_branch_has_no_fallthrough_edge():
    cfg = cfg_of(
        """
        main:
            addi t0, zero, 3
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
        """
    )
    last = cfg.blocks[-1]
    assert cfg.terminator(last).is_conditional_branch
    # the taken edge exists; there is no instruction to fall through to
    assert last.successors == (last.index,) or set(last.successors) == {
        cfg.block_at(1).index
    }


def test_simple_loop_back_edge_and_membership():
    cfg = cfg_of(
        """
        main:
            addi t0, zero, 4
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
            halt
        """
    )
    forest = find_loops(cfg)
    assert len(forest.loops) == 1
    loop = forest.loops[0]
    assert loop.depth == 1
    header = cfg.blocks[loop.header]
    assert cfg.address_of(header) == cfg.program.symbols["loop"]
    assert loop.back_edges and all(
        tail in loop.body for tail, _ in loop.back_edges
    )


def test_nested_loops_have_containment_and_depth():
    cfg = cfg_of(
        """
        main:
            addi s0, zero, 3
        outer:
            addi s1, zero, 5
        inner:
            addi s1, s1, -1
            bne s1, zero, inner
            addi s0, s0, -1
            bne s0, zero, outer
            halt
        """
    )
    forest = find_loops(cfg)
    assert len(forest.loops) == 2
    by_depth = {loop.depth: loop for loop in forest.loops}
    assert set(by_depth) == {1, 2}
    inner, outer = by_depth[2], by_depth[1]
    assert inner.body < outer.body
    assert inner.parent == outer.index
    assert forest.chain(inner.header)[0] is inner


def test_call_creates_function_entry_not_loop_edge():
    cfg = cfg_of(
        """
        main:
            addi s0, zero, 3
        loop:
            call helper
            addi s0, s0, -1
            bne s0, zero, loop
            halt
        helper:
            addi a0, zero, 7
            ret
        """
    )
    helper_block = cfg.block_at_address(cfg.program.symbols["helper"])
    assert helper_block.index in cfg.function_entries
    # the call block falls through to the next block; the callee is a
    # call site, not a successor
    call_block = cfg.block_at_address(cfg.program.symbols["loop"])
    assert helper_block.index not in call_block.successors
    assert (call_block.index, helper_block.index) in cfg.call_sites
    # the return has no intra-procedural successors
    assert cfg.blocks[-1].successors == ()
    # only the driver loop is a natural loop; the call does not create one
    forest = find_loops(cfg)
    assert len(forest.loops) == 1


def test_computed_jump_targets_all_address_taken_labels():
    cfg = cfg_of(
        """
        .data
        table: .word op_a, op_b
        .text
        main:
            la t0, table
            lw t1, 0(t0)
            jr t1
        op_a:
            halt
        op_b:
            halt
        """
    )
    op_a = cfg.block_at_address(cfg.program.symbols["op_a"])
    op_b = cfg.block_at_address(cfg.program.symbols["op_b"])
    assert cfg.indirect_targets == {op_a.index, op_b.index}
    jump_block = cfg.block_at_address(cfg.program.symbols["main"])
    assert set(jump_block.successors) == {op_a.index, op_b.index}
    # address-taken labels are reachability roots but not function entries
    assert op_a.index not in cfg.function_entries
    assert op_a.index in cfg.reachable_blocks()


def test_branch_outside_text_does_not_crash_cfg():
    # `beq` to a data-segment label leaves the text segment; the CFG
    # simply drops the edge (lint reports it separately)
    cfg = cfg_of(
        """
        .data
        blob: .word 1
        .text
        main:
            beq a0, zero, blob
            halt
        """
    )
    assert cfg.blocks[0].successors == (1,)  # only the fallthrough


def test_conditional_branches_enumerates_every_branch():
    cfg = cfg_of(
        """
        main:
            beq a0, zero, a
        a:
            bne a1, zero, b
        b:
            halt
        """
    )
    pcs = [pc for pc, _ in cfg.conditional_branches()]
    assert pcs == [cfg.program.address_of(0), cfg.program.address_of(1)]


# --------------------------------------------------------------------------- #
# Dominators
# --------------------------------------------------------------------------- #


def test_diamond_dominators():
    cfg = cfg_of(
        """
        main:
            beq a0, zero, right
        left:
            addi t0, zero, 1
            jal zero, join
        right:
            addi t0, zero, 2
        join:
            halt
        """
    )
    dom = compute_dominators(cfg)
    entry = cfg.entry
    join = cfg.block_at_address(cfg.program.symbols["join"]).index
    left = cfg.block_at_address(cfg.program.symbols["left"]).index
    right = cfg.block_at_address(cfg.program.symbols["right"]).index
    assert dom.idom[entry] == VIRTUAL_ROOT
    assert dom.idom[join] == entry  # neither arm dominates the join
    assert dom.dominates(entry, join)
    assert not dom.dominates(left, join)
    assert not dom.dominates(right, join)
    assert dom.dominators_of(join) == [entry]


# --------------------------------------------------------------------------- #
# Static conflict estimator
# --------------------------------------------------------------------------- #

NESTED = """
main:
    addi s0, zero, 3
outer:
    addi s1, zero, 5
inner:
    beq a0, zero, skip
    addi t0, zero, 1
skip:
    addi s1, s1, -1
    bne s1, zero, inner
    addi s0, s0, -1
    bne s0, zero, outer
    halt
"""


def test_estimator_weights_are_counted_trip_products():
    # NESTED counts its own bounds: the outer loop runs s0=3 times, the
    # inner s1=5 per entry — trip products, not the flat iters**depth
    estimate = StaticConflictEstimator(
        loop_iters=10, threshold=0
    ).estimate(assemble(NESTED))
    graph = estimate.graph
    program = estimate.cfg.program
    assert all(
        e.source == "counted" and e.bounded
        for e in estimate.trip_estimates.values()
    )
    assert sorted(
        e.trips for e in estimate.trip_estimates.values()
    ) == [3, 5]
    # inner-loop branches predict 3*5 executions, the outer branch 3
    inner_pc = program.symbols["inner"]
    assert estimate.predicted_executions(inner_pc) == 15
    bne_outer = program.symbols["skip"] + 12
    assert estimate.predicted_executions(bne_outer) == 3
    # branches sharing the inner loop get the inner-loop weight, and the
    # conflict ordering follows nesting: inner pair > outer pair
    bne_inner = program.symbols["skip"] + 4
    assert graph.edge_weight(inner_pc, bne_inner) == 15
    assert graph.edge_weight(bne_inner, bne_outer) == 3
    assert graph.edge_weight(inner_pc, bne_inner) > graph.edge_weight(
        inner_pc, bne_outer
    )


def test_estimator_threshold_prunes_shallow_edges():
    shallow = StaticConflictEstimator(
        loop_iters=10, threshold=16
    ).estimate(assemble(NESTED))
    # the heaviest loop predicts 3*5 = 15 < 16: every edge is pruned
    assert shallow.graph.edge_count == 0
    kept = StaticConflictEstimator(
        loop_iters=10, threshold=15
    ).estimate(assemble(NESTED))
    assert kept.graph.edge_count > 0
    # nodes survive pruning either way (they are the static branches)
    assert set(shallow.graph.nodes()) == set(kept.graph.nodes())


def test_unbounded_loop_falls_back_to_depth_weighted_default():
    # the loop bound arrives in a0 at runtime: not a counted loop, so
    # the estimator assumes loop_iters at depth 1
    estimate = StaticConflictEstimator(
        loop_iters=10, threshold=0
    ).estimate(
        assemble(
            """
            main:
                add s0, a0, zero
            loop:
                addi s0, s0, -1
                bne s0, zero, loop
                halt
            """
        )
    )
    [trip] = estimate.trip_estimates.values()
    assert not trip.bounded and trip.source == "default-depth"
    assert trip.trips == 10


def test_callee_branches_inherit_call_site_loop_context():
    source = """
    main:
        addi s0, zero, 5
    loop:
        call helper
        addi s0, s0, -1
        bne s0, zero, loop
        halt
    helper:
        beq a0, zero, out
        addi t0, zero, 1
    out:
        ret
    """
    estimate = StaticConflictEstimator(
        loop_iters=10, threshold=0
    ).estimate(assemble(source))
    program = estimate.cfg.program
    helper_branch = program.symbols["helper"]
    loop_branch = program.symbols["loop"] + 8
    # the callee's branch runs under the caller's counted loop (s0=5):
    # positive predicted weight and a conflict edge against the loop's
    # own branch
    assert estimate.predicted_executions(helper_branch) == 5
    assert estimate.graph.edge_weight(helper_branch, loop_branch) == 5


def test_estimator_rejects_bad_parameters():
    with pytest.raises(ValueError):
        StaticConflictEstimator(loop_iters=1)
    with pytest.raises(ValueError):
        StaticConflictEstimator(threshold=-1)


def test_allocator_from_static_graph_without_profile():
    graph = estimate_conflict_graph(assemble(NESTED), threshold=0)
    allocator = BranchAllocator.from_graph(graph)
    assert allocator.profile is None
    allocation = allocator.allocate(2)
    assert set(allocation.assignment) == set(graph.nodes())
    assert all(0 <= e < 2 for e in allocation.assignment.values())
    # index_map() is usable by the predictors directly
    index = allocation.index_map()
    for pc in graph.nodes():
        assert index(pc) == allocation.assignment[pc]


def test_allocator_requires_exactly_one_source():
    graph = estimate_conflict_graph(assemble(NESTED), threshold=0)
    with pytest.raises(ValueError):
        BranchAllocator()
    with pytest.raises(ValueError):
        BranchAllocator(profile=object(), graph=graph)  # type: ignore
