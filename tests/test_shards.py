"""Distributed sharding (repro.eval.shards) and the merge-shards flow.

The acceptance property this file pins down: a sharded suite run —
every host running the same selector with ``--shard K/N`` — merged with
``repro merge-shards`` is **byte-identical** to the unsharded run of the
same selection.  Shard identity never enters job digests or artifact
names; it only decides where a job runs.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.errors import SelectionError, ShardConflict
from repro.eval.shards import (
    MergeReport,
    ShardSpec,
    merge_shards,
    partition_selection,
    shard_names,
)
from repro.workloads.registry import (
    estimated_cost,
    known_benchmarks,
    resolve_selection,
)

subsets = st.sets(
    st.sampled_from(list(known_benchmarks())), min_size=1, max_size=10
)


# -- ShardSpec ---------------------------------------------------------------


def test_shard_spec_parse_roundtrip():
    spec = ShardSpec.parse(" 2/3 ")
    assert (spec.index, spec.total) == (2, 3)
    assert spec.tag == "2/3" == str(spec)


@pytest.mark.parametrize("text", ["", "1", "a/b", "1/0", "0/2", "3/2", "-1/2"])
def test_shard_spec_rejects_malformed(text):
    with pytest.raises(SelectionError):
        ShardSpec.parse(text)


# -- partitioning properties -------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(names=subsets, total=st.integers(min_value=1, max_value=5))
def test_shards_are_disjoint_and_cover_the_selection(names, total):
    ordered = sorted(names)
    bins = partition_selection(ordered, total)
    assert len(bins) == total
    flat = [name for shard in bins for name in shard]
    assert sorted(flat) == ordered  # exact cover, no duplicates
    covered = [
        name
        for k in range(1, total + 1)
        for name in shard_names(ordered, ShardSpec(k, total))
    ]
    assert sorted(covered) == ordered


@settings(max_examples=40, deadline=None)
@given(
    names=st.lists(
        st.sampled_from(list(known_benchmarks())),
        min_size=1,
        max_size=10,
        unique=True,
    ),
    total=st.integers(min_value=1, max_value=4),
)
def test_partition_is_order_independent(names, total):
    forward = partition_selection(names, total)
    backward = partition_selection(list(reversed(names)), total)
    assert [frozenset(s) for s in forward] == [
        frozenset(s) for s in backward
    ]
    # within a shard, names keep the input order
    order = {name: i for i, name in enumerate(names)}
    for shard in forward:
        positions = [order[name] for name in shard]
        assert positions == sorted(positions)


def test_partition_balances_estimated_cost():
    selection = resolve_selection("all")
    bins = partition_selection(selection.names, 2)
    loads = [
        sum(estimated_cost(name) for name in shard) for shard in bins
    ]
    heaviest = max(estimated_cost(name) for name in selection.names)
    # LPT guarantee: the gap between bins never exceeds one benchmark
    assert abs(loads[0] - loads[1]) <= heaviest


def test_unsharded_spec_keeps_everything():
    names = ("plot", "pgp", "compress")
    assert shard_names(names, None) == names
    assert shard_names(names, ShardSpec(1, 1)) == names


def test_more_shards_than_benchmarks_leaves_empties():
    bins = partition_selection(["plot", "pgp"], 4)
    assert sorted(len(b) for b in bins) == [0, 0, 1, 1]


# -- merge mechanics (fabricated stores, no simulation) ----------------------


def _fake_store(root, entries):
    root.mkdir(parents=True, exist_ok=True)
    for name, payload in entries.items():
        (root / name).write_bytes(payload)


def test_merge_unions_disjoint_stores(tmp_path):
    _fake_store(
        tmp_path / "s1",
        {"plot-aa.trace.npz": b"A", "plot-aa.meta.json": b"{}"},
    )
    _fake_store(tmp_path / "s2", {"pgp-bb.trace.npz": b"B"})
    report = merge_shards(
        [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
    )
    assert isinstance(report, MergeReport)
    assert report.artifacts_copied == 3
    assert report.artifacts_identical == 0
    assert (tmp_path / "out" / "plot-aa.trace.npz").read_bytes() == b"A"
    assert (tmp_path / "out" / "pgp-bb.trace.npz").read_bytes() == b"B"
    assert sorted(report.as_dict()) == [
        "artifacts_copied",
        "artifacts_identical",
        "benchmarks",
        "destination",
        "journal_records",
        "journal_skipped",
        "sources",
        "warnings",
    ]


def test_merge_is_idempotent_and_byte_verifies_overlap(tmp_path):
    entries = {"plot-aa.trace.npz": b"A" * 64}
    _fake_store(tmp_path / "s1", entries)
    _fake_store(tmp_path / "s2", entries)
    report = merge_shards(
        [tmp_path / "s1", tmp_path / "s2"], tmp_path / "out"
    )
    assert report.artifacts_copied == 1
    assert report.artifacts_identical == 1
    again = merge_shards([tmp_path / "s1"], tmp_path / "out")
    assert again.artifacts_copied == 0
    assert again.artifacts_identical == 1


def test_merge_detects_divergent_artifact_bytes(tmp_path):
    _fake_store(tmp_path / "s1", {"plot-aa.trace.npz": b"A" * 64})
    _fake_store(tmp_path / "s2", {"plot-aa.trace.npz": b"A" * 63 + b"X"})
    with pytest.raises(ShardConflict) as excinfo:
        merge_shards([tmp_path / "s1", tmp_path / "s2"], tmp_path / "out")
    assert excinfo.value.code == "shard_conflict"
    assert excinfo.value.context["artifact"] == "plot-aa.trace.npz"


def test_merge_rejects_missing_source(tmp_path):
    with pytest.raises(SelectionError):
        merge_shards([tmp_path / "nope"], tmp_path / "out")
    with pytest.raises(SelectionError):
        merge_shards([], tmp_path / "out")


def test_merge_shared_store_only_reads_the_journal(tmp_path):
    store = tmp_path / "shared"
    _fake_store(store, {"plot-aa.trace.npz": b"A"})
    report = merge_shards([store], store)
    assert report.artifacts_copied == 0
    assert report.artifacts_identical == 0


def _journal_line(benchmark):
    return json.dumps({
        "v": 1, "status": "completed", "benchmark": benchmark,
        "scale": 0.02, "trace_limit": None, "backend": "interp",
        "digest": "ab" * 32, "source": "simulated", "ts": 1.0,
    })


def test_merge_tolerates_torn_journal_tail(tmp_path):
    """A shard whose worker was SIGKILLed mid-append leaves a torn last
    line; the merge keeps the intact records and reports a warning
    instead of aborting the whole union."""
    _fake_store(tmp_path / "s1", {"plot-aa.trace.npz": b"A"})
    (tmp_path / "s1" / "journal.jsonl").write_text(
        _journal_line("plot") + "\n" + '{"v": 1, "status": "comp'
    )
    report = merge_shards([tmp_path / "s1"], tmp_path / "out")
    assert report.benchmarks == ["plot"]
    assert report.journal_skipped == 1
    assert len(report.warnings) == 1
    assert "journal" in report.warnings[0]
    # the surviving record landed in the destination journal
    merged = (tmp_path / "out" / "journal.jsonl").read_text()
    assert '"plot"' in merged


def test_merge_tolerates_mid_file_garbage(tmp_path):
    """Garbage *between* valid records (a torn line a later appender
    terminated) is skipped with a warning; both neighbours survive."""
    _fake_store(
        tmp_path / "s1",
        {"plot-aa.trace.npz": b"A", "pgp-bb.trace.npz": b"B"},
    )
    (tmp_path / "s1" / "journal.jsonl").write_text(
        _journal_line("plot") + "\n"
        + '{"torn": tru' + "\n"
        + _journal_line("pgp") + "\n"
    )
    report = merge_shards([tmp_path / "s1"], tmp_path / "out")
    assert sorted(report.benchmarks) == ["pgp", "plot"]
    assert report.journal_skipped == 1
    assert report.journal_records != {}


# -- end-to-end acceptance: sharded == unsharded, byte for byte --------------


def _store_bytes(root):
    """Artifact filename -> bytes (journal excluded: records carry
    wall-clock timestamps, so byte-identity is asserted on artifacts)."""
    return {
        p.name: p.read_bytes()
        for p in sorted(root.iterdir())
        if p.is_file() and p.name != "journal.jsonl"
    }


@pytest.mark.slow
def test_sharded_unix_run_merges_byte_identical(tmp_path, capsys):
    """`experiment --set unix --shard K/2` x2 + merge == unsharded."""
    scale = ["--scale", "0.02", "--jobs", "2"]
    base, s1, s2, merged = (
        str(tmp_path / d) for d in ("base", "s1", "s2", "merged")
    )
    assert main(
        ["experiment", "--set", "unix", "--cache", base] + scale
    ) == 0
    assert main(
        ["experiment", "--set", "unix", "--shard", "1/2", "--cache", s1]
        + scale
    ) == 0
    assert main(
        ["experiment", "--set", "unix", "--shard", "2/2", "--cache", s2]
        + scale
    ) == 0
    capsys.readouterr()
    assert main(["merge-shards", s1, s2, "--into", merged, "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    report = document["results"]
    assert sorted(report["benchmarks"]) == sorted(
        resolve_selection("unix").names
    )
    assert _store_bytes(tmp_path / "merged") == _store_bytes(
        tmp_path / "base"
    )
    # each shard owned a strict, non-empty subset
    shard_benchmarks = [
        {r.rsplit("-", 1)[0] for r in _store_bytes(tmp_path / d)}
        for d in ("s1", "s2")
    ]
    assert all(shard_benchmarks)
    assert not shard_benchmarks[0] & shard_benchmarks[1]


def test_sharded_journal_records_identity(tmp_path, capsys):
    """Sharded runs journal their shard tag and selection expression."""
    store = tmp_path / "store"
    assert main(
        [
            "experiment",
            "--set",
            "smoke-compress",
            "--shard",
            "1/1",
            "--scale",
            "0.02",
            "--cache",
            str(store),
        ]
    ) == 0
    capsys.readouterr()
    records = [
        json.loads(line)
        for line in (store / "journal.jsonl").read_text().splitlines()
    ]
    completed = [r for r in records if r.get("status") == "completed"]
    assert completed
    for record in completed:
        assert record["shard"] == "1/1"
        assert record["selection"] == "smoke-compress"


def test_cli_merge_shards_conflict_exits_one(tmp_path, capsys):
    _fake_store(tmp_path / "s1", {"plot-aa.trace.npz": b"A" * 16})
    _fake_store(tmp_path / "s2", {"plot-aa.trace.npz": b"B" * 16})
    code = main(
        [
            "merge-shards",
            str(tmp_path / "s1"),
            str(tmp_path / "s2"),
            "--into",
            str(tmp_path / "out"),
        ]
    )
    assert code == 1
    assert "shard_conflict" in capsys.readouterr().err


def test_cli_shard_flag_rejects_malformed(capsys):
    assert main(["experiment", "--set", "unix", "--shard", "2"]) == 2
    assert "K/N" in capsys.readouterr().err
