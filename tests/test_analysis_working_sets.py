"""Working-set partitioning tests: clique property, ground-truth recovery,
metrics, and property-based validity on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conflict_graph import ConflictGraph, build_conflict_graph
from repro.analysis.metrics import working_set_metrics
from repro.analysis.working_sets import (
    WorkingSet,
    WorkingSetPartition,
    is_clique,
    partition_working_sets,
)


def _clique_graph(*cliques, weight=200):
    graph = ConflictGraph()
    for members in cliques:
        for i, a in enumerate(members):
            graph.add_node(a, weight=10)
            for b in members[i + 1:]:
                graph.add_edge(a, b, weight)
    return graph


def test_disjoint_cliques_recovered_exactly():
    graph = _clique_graph([1, 2, 3], [10, 11], [20])
    partition = partition_working_sets(graph)
    recovered = {frozenset(s) for s in partition.as_pc_sets()}
    assert recovered == {
        frozenset({1, 2, 3}), frozenset({10, 11}), frozenset({20})
    }


def test_every_set_is_a_clique_and_partition_is_complete():
    graph = _clique_graph([1, 2, 3, 4], [5, 6], [7])
    graph.add_edge(4, 5, 300)  # cross edge: sets must still be cliques
    partition = partition_working_sets(graph)
    seen = set()
    for ws in partition.sets:
        assert is_clique(graph, list(ws.members))
        assert not (seen & ws.members)
        seen |= ws.members
    assert seen == set(graph.nodes())


def test_isolated_nodes_become_singletons():
    graph = ConflictGraph()
    for pc in (1, 2, 3):
        graph.add_node(pc)
    partition = partition_working_sets(graph)
    assert partition.count == 3
    assert partition.average_static_size == 1.0


def test_partition_deterministic():
    graph = _clique_graph([3, 1, 2], [9, 8])
    a = partition_working_sets(graph).as_pc_sets()
    b = partition_working_sets(graph).as_pc_sets()
    assert a == b


def test_metrics_static_vs_dynamic_average():
    # one hot pair and two cold singletons
    graph = ConflictGraph()
    graph.add_node(1, weight=90)
    graph.add_node(2, weight=90)
    graph.add_edge(1, 2, 500)
    graph.add_node(3, weight=10)
    graph.add_node(4, weight=10)
    partition = partition_working_sets(graph)
    assert partition.count == 3
    assert partition.average_static_size == (2 + 1 + 1) / 3
    # dynamic average weights by execution: (2*180 + 1*10 + 1*10) / 200
    assert abs(partition.average_dynamic_size - 1.9) < 1e-12
    assert partition.largest_size == 2


def test_set_of_lookup():
    graph = _clique_graph([1, 2], [3])
    partition = partition_working_sets(graph)
    assert partition.set_of(1) == partition.set_of(2)
    assert partition.set_of(3) is not None
    assert partition.set_of(99) is None


def test_empty_partition_metrics():
    partition = WorkingSetPartition()
    assert partition.count == 0
    assert partition.average_static_size == 0.0
    assert partition.average_dynamic_size == 0.0
    assert partition.largest_size == 0


def test_execution_weight_recorded():
    graph = _clique_graph([1, 2])
    partition = partition_working_sets(graph)
    assert partition.sets[0].execution_weight == 20


def test_working_set_metrics_from_profile(phased_profile, phased_workload):
    metrics = working_set_metrics(phased_profile, threshold=50)
    truth = phased_workload.ground_truth_working_sets()
    assert metrics.total_sets == len(truth)
    assert metrics.average_static_size == len(truth[0])
    assert metrics.largest_size == len(truth[0])


def test_synthetic_phases_recovered_exactly(phased_profile, phased_workload):
    graph = build_conflict_graph(phased_profile, threshold=50)
    recovered = {
        frozenset(s)
        for s in partition_working_sets(graph).as_pc_sets()
    }
    truth = {
        frozenset(s) for s in phased_workload.ground_truth_working_sets()
    }
    assert recovered == truth


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=14),
            st.integers(min_value=0, max_value=14),
            st.integers(min_value=1, max_value=1000),
        ),
        max_size=60,
    )
)
def test_partition_validity_on_random_graphs(edges):
    graph = ConflictGraph()
    for a, b, weight in edges:
        if a != b:
            graph.add_edge(0x100 + 4 * a, 0x100 + 4 * b, weight)
    partition = partition_working_sets(graph)
    covered = set()
    for ws in partition.sets:
        assert is_clique(graph, list(ws.members))
        assert not (covered & ws.members), "sets must be disjoint"
        covered |= ws.members
    assert covered == set(graph.nodes())


def test_working_set_size_property():
    ws = WorkingSet(members=frozenset({1, 2, 3}), execution_weight=30)
    assert ws.size == 3
