"""Strict journal validation on ``--resume``.

``RunJournal.records()`` is deliberately tolerant — a torn line is a
skip, never a crash.  But a *resume* run stakes correctness on the
journal's contents, so it first runs :meth:`RunJournal.validate`, which
draws a sharp line: the one damage pattern a dying writer legitimately
leaves (a single torn tail) becomes a warning naming the path and line;
anything else — garbage mid-file, non-object records, records stamped
by a newer format version — raises a typed
:class:`~repro.errors.JournalInvalid` telling the operator exactly
which line to fix (or to rerun without ``--resume``).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint.journal import JOURNAL_VERSION, RunJournal
from repro.errors import JournalInvalid
from repro.eval.engine import ExecutionEngine

REPO = Path(__file__).resolve().parent.parent
SCALE = 0.05


def make_journal(tmp_path) -> RunJournal:
    journal = RunJournal(tmp_path / "cache")
    journal.record_completed("plot", "a" * 16, SCALE, None)
    journal.record_completed("compress", "b" * 16, SCALE, None)
    return journal


def append_raw(journal: RunJournal, data: bytes) -> None:
    with open(journal.path, "ab") as fh:
        fh.write(data)


# -- validate(): tolerated damage -------------------------------------------


def test_clean_journal_validates_with_no_warnings(tmp_path):
    journal = make_journal(tmp_path)
    assert journal.validate() == []


def test_missing_journal_validates_with_no_warnings(tmp_path):
    assert RunJournal(tmp_path / "nowhere").validate() == []


def test_single_torn_tail_is_a_warning_naming_path_and_line(tmp_path):
    journal = make_journal(tmp_path)
    append_raw(journal, b'{"status": "completed", "benchm')  # no newline
    warnings = journal.validate()
    assert len(warnings) == 1
    assert warnings[0].startswith(f"{journal.path}:3:")
    assert "torn tail" in warnings[0]
    # the tolerant reader agrees: the torn record is simply absent
    assert len(journal.records()) == 2


def test_append_after_torn_tail_terminates_it_first(tmp_path):
    """A new record after a torn tail must not fuse into the garbage
    line — append() seals the tail with a newline first."""
    journal = make_journal(tmp_path)
    append_raw(journal, b'{"torn')
    journal.record_completed("gcc", "c" * 16, SCALE, None)
    records = journal.records()
    assert [r["benchmark"] for r in records] == ["plot", "compress", "gcc"]
    # the torn line is now mid-file garbage: strict validation rejects it
    with pytest.raises(JournalInvalid):
        journal.validate()


# -- validate(): structural damage ------------------------------------------


def test_garbage_mid_file_raises_naming_the_line(tmp_path):
    journal = make_journal(tmp_path)
    append_raw(journal, b"{definitely not json}\n")
    journal.record_completed("gcc", "c" * 16, SCALE, None)
    with pytest.raises(JournalInvalid) as info:
        journal.validate()
    message = str(info.value)
    assert str(journal.path) in message
    assert "line 3" in message
    assert "--resume" in message
    assert info.value.context["line"] == 3
    assert "definitely not json" in info.value.context["record"]


def test_non_object_record_raises(tmp_path):
    journal = make_journal(tmp_path)
    append_raw(journal, b'["a", "list", "record"]\n')
    with pytest.raises(JournalInvalid) as info:
        journal.validate()
    assert "non-object" in str(info.value)
    assert info.value.context["line"] == 3


def test_newer_format_version_raises_with_versions_in_context(tmp_path):
    journal = make_journal(tmp_path)
    newer = {"status": "completed", "benchmark": "gcc",
             "digest": "c" * 16, "scale": SCALE, "trace_limit": None,
             "v": JOURNAL_VERSION + 1}
    append_raw(journal, json.dumps(newer).encode() + b"\n")
    with pytest.raises(JournalInvalid) as info:
        journal.validate()
    assert "newer repro" in str(info.value)
    assert info.value.context["version"] == JOURNAL_VERSION + 1
    assert info.value.context["supported"] == JOURNAL_VERSION
    assert info.value.code == "journal_invalid"


def test_unreadable_journal_raises(tmp_path):
    if os.geteuid() == 0:
        pytest.skip("root ignores file permissions")
    journal = make_journal(tmp_path)
    journal.path.chmod(0o000)
    try:
        with pytest.raises(JournalInvalid) as info:
            journal.validate()
        assert "unreadable" in str(info.value)
    finally:
        journal.path.chmod(0o644)


def test_snippet_is_bounded(tmp_path):
    journal = make_journal(tmp_path)
    append_raw(journal, b"x" * 500 + b"\n")
    journal.record_completed("gcc", "c" * 16, SCALE, None)
    with pytest.raises(JournalInvalid) as info:
        journal.validate()
    assert len(info.value.context["record"]) <= 123  # snippet + ellipsis


# -- the engine and CLI surface validation ----------------------------------


def test_engine_resume_surfaces_torn_tail_warning(tmp_path):
    cache = tmp_path / "cache"
    journal = RunJournal(cache)
    journal.record_completed("plot", "a" * 16, SCALE, None)
    append_raw(journal, b'{"torn')
    engine = ExecutionEngine(cache_dir=cache, scale=SCALE, resume=True)
    assert len(engine.journal_warnings) == 1
    assert "torn tail" in engine.journal_warnings[0]


def test_engine_resume_raises_on_structural_damage(tmp_path):
    cache = tmp_path / "cache"
    journal = RunJournal(cache)
    journal.record_completed("plot", "a" * 16, SCALE, None)
    append_raw(journal, b"garbage\n")
    journal.record_completed("gcc", "c" * 16, SCALE, None)
    with pytest.raises(JournalInvalid):
        ExecutionEngine(cache_dir=cache, scale=SCALE, resume=True)


def test_engine_without_resume_never_validates(tmp_path):
    cache = tmp_path / "cache"
    journal = RunJournal(cache)
    journal.root.mkdir(parents=True)
    append_raw(journal, b"garbage everywhere\n")
    engine = ExecutionEngine(cache_dir=cache, scale=SCALE)
    assert engine.journal_warnings == []


def test_cli_resume_with_corrupt_journal_names_the_path(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    cache = tmp_path / "cache"
    journal = RunJournal(cache)
    journal.record_completed("plot", "a" * 16, SCALE, None)
    append_raw(journal, b"{broken}\n")
    journal.record_completed("gcc", "c" * 16, SCALE, None)
    result = subprocess.run(
        [sys.executable, "-m", "repro", "experiment", "table2",
         "--scale", str(SCALE), "--cache", str(cache), "--resume"],
        env=env, capture_output=True, timeout=120,
    )
    assert result.returncode == 1
    stderr = result.stderr.decode()
    assert "error: [journal_invalid]" in stderr
    assert str(journal.path) in stderr
    assert "line 2" in stderr
