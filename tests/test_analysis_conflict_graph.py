"""Conflict graph tests."""

import pytest

from repro.analysis.conflict_graph import ConflictGraph, build_conflict_graph
from repro.profiling.profile import BranchStats, InterleaveProfile, pair_key


def _graph():
    graph = ConflictGraph()
    graph.add_edge(1, 2, 100)
    graph.add_edge(2, 3, 50)
    graph.add_node(4, weight=7)
    return graph


def test_counts():
    graph = _graph()
    assert graph.node_count == 4
    assert graph.edge_count == 2


def test_nodes_sorted():
    assert _graph().nodes() == [1, 2, 3, 4]


def test_edge_weight_symmetric():
    graph = _graph()
    assert graph.edge_weight(1, 2) == graph.edge_weight(2, 1) == 100
    assert graph.edge_weight(1, 3) == 0


def test_add_edge_accumulates():
    graph = _graph()
    graph.add_edge(1, 2, 25)
    assert graph.edge_weight(1, 2) == 125


def test_self_loop_rejected():
    with pytest.raises(ValueError):
        ConflictGraph().add_edge(1, 1, 10)


def test_nonpositive_count_rejected():
    with pytest.raises(ValueError):
        ConflictGraph().add_edge(1, 2, 0)


def test_degrees():
    graph = _graph()
    assert graph.degree(2) == 2
    assert graph.weighted_degree(2) == 150
    assert graph.degree(4) == 0


def test_edges_iteration_deterministic():
    assert list(_graph().edges()) == [(1, 2, 100), (2, 3, 50)]


def test_remove_edge():
    graph = _graph()
    graph.remove_edge(1, 2)
    assert not graph.has_edge(1, 2)
    graph.remove_edge(1, 99)  # no-op, no raise


def test_copy_is_independent():
    graph = _graph()
    clone = graph.copy()
    clone.add_edge(3, 4, 10)
    assert not graph.has_edge(3, 4)


def test_pruned_drops_light_edges_keeps_nodes():
    pruned = _graph().pruned(threshold=60)
    assert pruned.has_edge(1, 2)
    assert not pruned.has_edge(2, 3)
    assert pruned.node_count == 4  # isolated nodes survive


def test_pruned_rejects_negative_threshold():
    with pytest.raises(ValueError):
        _graph().pruned(-1)


def test_filtered_edges():
    filtered = _graph().filtered_edges(lambda a, b: (a, b) == (1, 2))
    assert not filtered.has_edge(1, 2)
    assert filtered.has_edge(2, 3)


def test_subgraph():
    sub = _graph().subgraph([1, 2, 4])
    assert sub.nodes() == [1, 2, 4]
    assert sub.has_edge(1, 2)
    assert sub.node_weight(4) == 7


def test_build_from_profile_applies_threshold():
    profile = InterleaveProfile(
        branches={1: BranchStats(10, 5), 2: BranchStats(8, 2),
                  3: BranchStats(2, 0)},
        pairs={pair_key(1, 2): 500, pair_key(1, 3): 5},
    )
    graph = build_conflict_graph(profile, threshold=100)
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(1, 3)
    assert graph.node_weight(1) == 10
    assert graph.node_count == 3


def test_build_from_profile_with_restriction():
    profile = InterleaveProfile(
        branches={1: BranchStats(10, 0), 2: BranchStats(8, 0),
                  3: BranchStats(9, 0)},
        pairs={pair_key(1, 2): 500, pair_key(2, 3): 500},
    )
    graph = build_conflict_graph(profile, threshold=100, restrict_to=[1, 2])
    assert graph.node_count == 2
    assert graph.has_edge(1, 2)
    assert not graph.has_node(3)
