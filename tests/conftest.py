"""Shared fixtures.

The expensive fixtures (benchmark runs) are session-scoped and run the
analog suite at a small scale; structural assertions hold at any scale,
while the paper-shape assertions (who beats whom) are exercised at full
scale only by the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.eval.runner import BenchmarkRunner
from repro.profiling.interleave import profile_trace
from repro.trace.synthetic import make_phased_workload

#: Scale used by integration tests: fast, still structurally faithful.
TEST_SCALE = 0.12

#: Edge threshold matched to the test scale (the paper's 100 assumes full
#: iteration counts; at 0.12 scale phases revisit ~14x).
TEST_THRESHOLD = 10


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    """A session-wide benchmark runner at test scale."""
    return BenchmarkRunner(scale=TEST_SCALE)


@pytest.fixture(scope="session")
def phased_workload():
    """A synthetic workload with known ground-truth working sets."""
    return make_phased_workload(
        n_phases=6,
        branches_per_phase=10,
        iterations=250,
        seed=7,
        text_span=1 << 20,
    )


@pytest.fixture(scope="session")
def phased_trace(phased_workload):
    """The trace of the synthetic phased workload."""
    return phased_workload.generate(seed=11)


@pytest.fixture(scope="session")
def phased_profile(phased_trace):
    """Interleave profile of the synthetic phased workload."""
    return profile_trace(phased_trace)
