"""Group-level allocation tests."""

import pytest

from conftest import TEST_THRESHOLD
from repro.analysis.groups import Grouping, group_by_bias
from repro.eval.group_allocation import (
    allocate_groups,
    format_group_ablation,
    run_group_ablation,
)
from repro.profiling.profile import BranchStats, InterleaveProfile, pair_key


def _profile():
    return InterleaveProfile(
        branches={
            0x10: BranchStats(500, 500),   # taken-biased
            0x20: BranchStats(500, 499),   # taken-biased
            0x30: BranchStats(500, 250),   # mixed
            0x40: BranchStats(500, 200),   # mixed
        },
        pairs={
            pair_key(0x10, 0x20): 400,
            pair_key(0x10, 0x30): 350,
            pair_key(0x30, 0x40): 300,
        },
        name="grp-alloc",
    )


def test_allocate_groups_members_share_an_entry():
    profile = _profile()
    grouping = group_by_bias(profile)
    result = allocate_groups(profile, grouping, bht_size=8, threshold=100)
    assert result.assignment[0x10] == result.assignment[0x20]
    assert result.cost == 0
    assert result.group_count == 3  # taken group + two mixed singletons


def test_allocate_groups_separates_conflicting_groups():
    profile = _profile()
    grouping = group_by_bias(profile)
    result = allocate_groups(profile, grouping, bht_size=8, threshold=100)
    # the taken group conflicts with mixed 0x30 (350 > threshold)
    assert result.assignment[0x10] != result.assignment[0x30]
    assert result.assignment[0x30] != result.assignment[0x40]


def test_allocate_groups_index_map_falls_back():
    profile = _profile()
    result = allocate_groups(
        profile, group_by_bias(profile), bht_size=8, threshold=100
    )
    index_map = result.index_map()
    assert index_map.index(0x10) == result.assignment[0x10]
    assert 0 <= index_map.index(0x9999) < 8  # unmapped -> fallback


def test_allocate_groups_with_trivial_grouping_matches_branch_level():
    profile = _profile()
    identity = Grouping(
        assignment={pc: i for i, pc in enumerate(sorted(profile.branches))},
        labels={},
    )
    result = allocate_groups(profile, identity, bht_size=8, threshold=100)
    # identity grouping: every branch keeps its own entry, no conflicts
    assert result.cost == 0
    entries = {result.assignment[pc] for pc in profile.branches}
    assert len(entries) == 4


def test_run_group_ablation_rows(runner):
    rows = run_group_ablation(
        runner, ["compress"], bht_size=64, threshold=TEST_THRESHOLD
    )
    (row,) = rows
    assert row.benchmark == "compress"
    assert row.bias_groups >= 1
    assert row.pattern_groups >= 1
    for rate in (
        row.branch_mispredict,
        row.bias_mispredict,
        row.pattern_mispredict,
        row.conventional,
    ):
        assert 0.0 <= rate <= 1.0
    text = format_group_ablation(rows)
    assert "group-level allocation" in text
    assert format_group_ablation([]) == "(no results)"
