"""Branch classification tests (paper §5.2 machinery)."""

import pytest

from repro.analysis.classification import (
    BiasClass,
    ClassificationBounds,
    classify_branch,
    classify_profile,
    drop_same_class_biased_edges,
)
from repro.analysis.conflict_graph import ConflictGraph
from repro.profiling.profile import BranchStats, InterleaveProfile


def test_default_bounds_match_paper():
    bounds = ClassificationBounds()
    assert bounds.taken_bound == 0.99
    assert bounds.not_taken_bound == 0.01


def test_bounds_validation():
    with pytest.raises(ValueError):
        ClassificationBounds(taken_bound=0.2, not_taken_bound=0.5)
    with pytest.raises(ValueError):
        ClassificationBounds(taken_bound=1.2)


def test_classify_branch_regions():
    assert classify_branch(0.999) is BiasClass.TAKEN_BIASED
    assert classify_branch(0.001) is BiasClass.NOT_TAKEN_BIASED
    assert classify_branch(0.5) is BiasClass.MIXED
    # boundary values are NOT biased (paper: strictly > 99% / < 1%)
    assert classify_branch(0.99) is BiasClass.MIXED
    assert classify_branch(0.01) is BiasClass.MIXED


def test_classify_profile():
    profile = InterleaveProfile(
        branches={
            1: BranchStats(1000, 1000),   # always taken
            2: BranchStats(1000, 0),      # never taken
            3: BranchStats(1000, 500),    # mixed
        }
    )
    classes = classify_profile(profile)
    assert classes[1] is BiasClass.TAKEN_BIASED
    assert classes[2] is BiasClass.NOT_TAKEN_BIASED
    assert classes[3] is BiasClass.MIXED


def test_drop_same_class_biased_edges():
    graph = ConflictGraph()
    graph.add_edge(1, 2, 500)   # both taken-biased -> dropped
    graph.add_edge(1, 3, 500)   # taken vs mixed -> kept
    graph.add_edge(3, 4, 500)   # mixed vs mixed -> kept
    graph.add_edge(5, 6, 500)   # both not-taken-biased -> dropped
    graph.add_edge(1, 5, 500)   # taken vs not-taken -> kept
    classes = {
        1: BiasClass.TAKEN_BIASED,
        2: BiasClass.TAKEN_BIASED,
        3: BiasClass.MIXED,
        4: BiasClass.MIXED,
        5: BiasClass.NOT_TAKEN_BIASED,
        6: BiasClass.NOT_TAKEN_BIASED,
    }
    filtered = drop_same_class_biased_edges(graph, classes)
    assert not filtered.has_edge(1, 2)
    assert not filtered.has_edge(5, 6)
    assert filtered.has_edge(1, 3)
    assert filtered.has_edge(3, 4)
    assert filtered.has_edge(1, 5)
    # nodes always survive
    assert filtered.node_count == graph.node_count


def test_unclassified_branches_default_to_mixed():
    graph = ConflictGraph()
    graph.add_edge(1, 2, 500)
    filtered = drop_same_class_biased_edges(graph, {})
    assert filtered.has_edge(1, 2)


def test_custom_bounds_change_classification():
    loose = ClassificationBounds(taken_bound=0.8, not_taken_bound=0.2)
    assert classify_branch(0.9, loose) is BiasClass.TAKEN_BIASED
    assert classify_branch(0.9) is BiasClass.MIXED
