"""Classified allocation and minimal-BHT-size search tests."""

import pytest

from repro.allocation.allocator import BranchAllocator
from repro.allocation.classified import (
    NOT_TAKEN_ENTRY,
    TAKEN_ENTRY,
    ClassifiedBranchAllocator,
)
from repro.allocation.conflict_cost import conventional_cost
from repro.allocation.sizing import cost_sweep, required_bht_size
from repro.profiling.profile import BranchStats, InterleaveProfile, pair_key


def _biased_profile():
    """Four highly biased branches in one hot clique + two mixed."""
    branches = {
        0x10: BranchStats(1000, 1000),  # taken-biased
        0x20: BranchStats(1000, 999),   # taken-biased (99.9%)
        0x30: BranchStats(1000, 0),     # not-taken-biased
        0x40: BranchStats(1000, 1),     # not-taken-biased
        0x50: BranchStats(1000, 500),   # mixed
        0x60: BranchStats(1000, 400),   # mixed
    }
    pcs = list(branches)
    pairs = {}
    for i, a in enumerate(pcs):
        for b in pcs[i + 1:]:
            pairs[pair_key(a, b)] = 500
    return InterleaveProfile(branches=branches, pairs=pairs, name="biased")


def test_biased_branches_map_to_reserved_entries():
    allocator = ClassifiedBranchAllocator(_biased_profile())
    result = allocator.allocate(8)
    assert result.assignment[0x10] == TAKEN_ENTRY
    assert result.assignment[0x20] == TAKEN_ENTRY
    assert result.assignment[0x30] == NOT_TAKEN_ENTRY
    assert result.assignment[0x40] == NOT_TAKEN_ENTRY


def test_mixed_branches_avoid_reserved_entries():
    allocator = ClassifiedBranchAllocator(_biased_profile())
    result = allocator.allocate(8)
    assert result.assignment[0x50] >= 2
    assert result.assignment[0x60] >= 2


def test_same_class_conflicts_carry_no_cost():
    allocator = ClassifiedBranchAllocator(_biased_profile())
    result = allocator.allocate(8)
    # the only potentially costly edges are cross-class/biased-vs-mixed;
    # with 6 free entries the mixed pair separates, so cost is zero
    assert result.cost == 0


def test_classified_needs_fewer_entries_than_plain():
    profile = _biased_profile()
    plain = BranchAllocator(profile)
    classified = ClassifiedBranchAllocator(profile)
    # the full 6-clique needs 6 entries raw; classified collapses the four
    # biased branches onto 2 reserved entries + 2 mixed = 4
    assert plain.allocate(4).cost > 0
    assert classified.allocate(4).cost == 0


def test_classified_requires_room_for_reserved_entries():
    allocator = ClassifiedBranchAllocator(_biased_profile())
    with pytest.raises(ValueError):
        allocator.allocate(2)


def test_biased_branch_count():
    allocator = ClassifiedBranchAllocator(_biased_profile())
    assert allocator.biased_branch_count == 4


def test_required_bht_size_finds_minimum():
    profile = _biased_profile()
    allocator = BranchAllocator(profile)
    # baseline: everything on one entry (pathological) -> any separation wins
    baseline = allocator.allocate(1).cost
    sizing = required_bht_size(allocator, baseline, min_size=1)
    assert sizing.required_size == 2
    assert sizing.achieved_cost < baseline
    assert sizing.probes  # search recorded its probes


def test_required_bht_size_zero_baseline_demands_zero_cost():
    profile = _biased_profile()
    allocator = BranchAllocator(profile)
    sizing = required_bht_size(allocator, baseline_cost=0, min_size=1)
    assert sizing.achieved_cost == 0
    assert sizing.required_size == 6  # the clique needs all six entries


def test_required_bht_size_raises_when_unreachable():
    profile = _biased_profile()
    allocator = BranchAllocator(profile)
    with pytest.raises(RuntimeError):
        # cost can never drop below zero, and baseline -1 is unbeatable
        required_bht_size(allocator, baseline_cost=-1, max_size=64)


def test_cost_sweep_returns_one_result_per_size():
    allocator = BranchAllocator(_biased_profile())
    results = cost_sweep(allocator, [2, 4, 8])
    assert [r.bht_size for r in results] == [2, 4, 8]
    costs = [r.cost for r in results]
    assert costs == sorted(costs, reverse=True)


def test_sizing_consistent_with_conventional_baseline(phased_profile):
    allocator = BranchAllocator(phased_profile, threshold=50)
    baseline = conventional_cost(allocator.graph, 1024)
    sizing = required_bht_size(allocator, baseline)
    # allocated tables beat a 1024-entry conventional BHT with far fewer
    # entries (the paper's headline claim)
    assert sizing.required_size <= 64
