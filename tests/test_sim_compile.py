"""Unit tests for the superblock trace compiler itself.

The differential suite (``test_sim_backends.py``) establishes semantic
equivalence; these tests pin the compiler's mechanics: the per-image
code cache, lazy materialization, exact fuel accounting across compiled
regions, and the interpreter fallback for off-trace program counters.
"""

import pytest

from repro.asm.assembler import assemble
from repro.sim import FuelExhausted, Simulator
from repro.sim.compile import (
    FALLBACK_STEP,
    MAX_FN_INSTRUCTIONS,
    SuperblockExecutor,
    compile_program,
    compiled_table,
)

LOOP_SOURCE = """
main:
    li x5, 0
    li x6, 400
loop:
    addi x5, x5, 1
    bne x5, x6, loop
    halt
"""


def test_compiled_table_is_cached_per_image_and_mode():
    program = assemble(LOOP_SOURCE)
    again = assemble(LOOP_SOURCE)
    assert compiled_table(program, "none") is compiled_table(again, "none")
    assert compiled_table(program, "none") is not compiled_table(
        program, "hook"
    )
    other = assemble(LOOP_SOURCE.replace("400", "401"))
    assert compiled_table(other, "none") is not compiled_table(
        program, "none"
    )


def test_entries_materialize_lazily():
    table = compile_program(assemble(LOOP_SOURCE), "none")
    assert table  # the loop compiles
    for entry in table.values():
        function, worst, source, name = entry
        assert function is None  # nothing compiled until first execution
        assert 0 < worst <= MAX_FN_INSTRUCTIONS
        assert f"def {name}(" in source


def test_worst_case_never_overshoots_budget():
    # drive the loop in many tiny budget slices; each slice must retire
    # exactly its budget (FuelExhausted) or halt, never overshoot
    program = assemble(LOOP_SOURCE)
    sim = Simulator(program, backend="superblock")
    retired = 0
    for _ in range(10_000):
        before = sim.executor.instruction_count
        try:
            sim.run(max_instructions=7, allow_truncation=False)
        except FuelExhausted:
            assert sim.executor.instruction_count - before == 7
            retired += 7
        else:
            break
    assert sim.state.halted

    reference = Simulator(program, backend="interp")
    reference.run(allow_truncation=False)
    assert (
        sim.executor.instruction_count == reference.executor.instruction_count
    )
    assert list(sim.state.regs) == list(reference.state.regs)


def test_off_trace_pc_falls_back_to_interpreter():
    # point the resumed PC into the middle of a compiled trace: the
    # dispatcher has no entry there and must interpret its way out
    program = assemble(LOOP_SOURCE)
    table = compiled_table(program, "none")
    sim = Simulator(program, backend="superblock")
    sim.run(max_instructions=10, allow_truncation=True)
    assert isinstance(sim.executor, SuperblockExecutor)
    off_trace = sim.state.pc + 4
    assert off_trace not in table or sim.state.pc in table
    sim.state.pc = off_trace
    sim.run(max_instructions=FALLBACK_STEP, allow_truncation=True)
    # forward progress happened despite the off-trace entry point
    assert sim.executor.instruction_count > 10


def test_unanalyzable_program_runs_on_fallback():
    # an indirect jump straight at entry defeats trace formation for
    # the entry region; execution must still be exact
    source = """
main:
    li x5, 12
    la x6, target
    jalr x0, x6, 0
target:
    addi x5, x5, 30
    halt
"""
    program = assemble(source)
    sim = Simulator(program, backend="superblock")
    sim.run(allow_truncation=False)
    assert sim.state.read(5) == 42
    assert sim.state.halted


def test_compile_program_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown specialization mode"):
        compile_program(assemble(LOOP_SOURCE), "jit")
