"""Graph colouring tests: validity, overflow sharing, load balancing, and
property-based checks on random graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.coloring import color_graph, verify_coloring
from repro.analysis.conflict_graph import ConflictGraph


def _clique(members, weight=100):
    graph = ConflictGraph()
    for i, a in enumerate(members):
        graph.add_node(a, weight=10)
        for b in members[i + 1:]:
            graph.add_edge(a, b, weight)
    return graph


def test_clique_colored_conflict_free_when_colors_suffice():
    graph = _clique([1, 2, 3, 4])
    result = color_graph(graph, colors=4)
    ok, clashes = verify_coloring(graph, result.assignment)
    assert ok and clashes == 0
    assert result.cost == 0
    assert result.colors_used == 4
    assert not result.shared_nodes


def test_overflow_shares_cheapest_color():
    graph = _clique([1, 2, 3], weight=100)
    result = color_graph(graph, colors=2)
    assert result.cost == 100       # exactly one edge shares
    assert len(result.shared_nodes) == 1


def test_overflow_victim_has_fewest_conflicts():
    # node 4 is lightly connected: the paper's rule shares it first
    graph = _clique([1, 2, 3], weight=1000)
    graph.add_node(4, weight=1)
    graph.add_edge(1, 4, 10)
    graph.add_edge(2, 4, 10)
    graph.add_edge(3, 4, 10)
    result = color_graph(graph, colors=3)
    # sharing 4 with one of {1,2,3} costs 10; sharing among the heavy
    # clique would cost 1000
    assert result.cost == 10


def test_zero_colors_rejected():
    with pytest.raises(ValueError):
        color_graph(_clique([1, 2]), colors=0)


def test_color_offset_shifts_palette():
    graph = _clique([1, 2, 3])
    result = color_graph(graph, colors=3, color_offset=2)
    assert set(result.assignment.values()) <= {2, 3, 4}


def test_load_balancing_spreads_independent_nodes():
    # 8 isolated nodes, 4 colours: each colour carries exactly 2 nodes
    graph = ConflictGraph()
    for pc in range(8):
        graph.add_node(pc, weight=10)
    result = color_graph(graph, colors=4)
    from collections import Counter

    loads = Counter(result.assignment.values())
    assert sorted(loads.values()) == [2, 2, 2, 2]


def test_load_balancing_respects_execution_weight():
    # one heavy node and three light ones, 2 colours: the heavy node's
    # colour receives fewer companions
    graph = ConflictGraph()
    graph.add_node(0, weight=1000)
    for pc in (1, 2, 3):
        graph.add_node(pc, weight=10)
    result = color_graph(graph, colors=2)
    heavy_color = result.assignment[0]
    companions = [
        pc for pc in (1, 2, 3) if result.assignment[pc] == heavy_color
    ]
    assert len(companions) <= 1


def test_deterministic():
    graph = _clique([5, 1, 9, 3])
    graph.add_edge(5, 11, 50)
    a = color_graph(graph, colors=3).assignment
    b = color_graph(graph, colors=3).assignment
    assert a == b


def test_empty_graph():
    result = color_graph(ConflictGraph(), colors=4)
    assert result.assignment == {}
    assert result.cost == 0


def test_verify_coloring_reports_clash_weight():
    graph = _clique([1, 2], weight=77)
    ok, clashes = verify_coloring(graph, {1: 0, 2: 0})
    assert not ok and clashes == 77


@settings(max_examples=60, deadline=None)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=1, max_value=500),
        ),
        max_size=50,
    ),
    colors=st.integers(min_value=1, max_value=6),
)
def test_coloring_invariants_on_random_graphs(edges, colors):
    graph = ConflictGraph()
    for a, b, weight in edges:
        if a != b:
            graph.add_edge(a, b, weight)
    result = color_graph(graph, colors=colors)
    # every node coloured, all colours in range
    assert set(result.assignment) == set(graph.nodes())
    assert all(0 <= c < colors for c in result.assignment.values())
    # reported cost matches an independent recount
    _, clashes = verify_coloring(graph, result.assignment)
    assert clashes == result.cost
    # enough colours -> zero cost (greedy is safe below the degree bound)
    max_degree = max(
        (graph.degree(pc) for pc in graph.nodes()), default=0
    )
    if colors > max_degree:
        assert result.cost == 0


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=0, max_value=10),
        ),
        max_size=40,
    )
)
def test_cost_non_increasing_in_colors(edges):
    graph = ConflictGraph()
    for a, b in edges:
        if a != b:
            graph.add_edge(a, b, 100)
    costs = [
        color_graph(graph, colors=k).cost for k in (1, 2, 4, 8, 16)
    ]
    assert costs == sorted(costs, reverse=True)
