"""Bias-filtering predictor tests (related work [15])."""

import pytest

from repro.analysis.classification import ClassificationBounds
from repro.predictors.filtered import BiasFilteredPredictor
from repro.predictors.simulator import simulate_predictor
from repro.predictors.twolevel import PAgPredictor
from repro.profiling.profile import BranchStats, InterleaveProfile
from repro.trace.events import BranchEvent, BranchTrace


def _profile():
    return InterleaveProfile(
        branches={
            0x100: BranchStats(1000, 1000),  # always taken
            0x200: BranchStats(1000, 2),     # almost never taken
            0x300: BranchStats(1000, 500),   # mixed
            0x400: BranchStats(4, 4),        # too few executions to trust
        }
    )


def test_biased_branches_filtered_with_direction():
    predictor = BiasFilteredPredictor(
        PAgPredictor.conventional(64, 6), _profile()
    )
    assert predictor.filtered_count == 2
    assert predictor.predict(0x100) is True
    assert predictor.predict(0x200) is False


def test_mixed_and_cold_branches_use_backing():
    predictor = BiasFilteredPredictor(
        PAgPredictor.conventional(64, 6), _profile()
    )
    assert 0x300 not in predictor.static_direction
    assert 0x400 not in predictor.static_direction


def test_filtered_branches_never_touch_backing_state():
    backing = PAgPredictor.conventional(64, 6)
    predictor = BiasFilteredPredictor(backing, _profile())
    before_bht = list(backing.bht.table)
    before_pht = list(backing.pht.table)
    for _ in range(50):
        predictor.access(0x100, True)
        predictor.update(0x200, False)
    assert backing.bht.table == before_bht
    assert backing.pht.table == before_pht


def test_min_executions_guard():
    predictor = BiasFilteredPredictor(
        PAgPredictor.conventional(64, 6), _profile(), min_executions=2
    )
    assert 0x400 in predictor.static_direction
    with pytest.raises(ValueError):
        BiasFilteredPredictor(
            PAgPredictor.conventional(64, 6), _profile(),
            min_executions=-1,
        )


def test_custom_bounds():
    loose = ClassificationBounds(taken_bound=0.4, not_taken_bound=0.3)
    predictor = BiasFilteredPredictor(
        PAgPredictor.conventional(64, 6), _profile(), bounds=loose
    )
    # the 50%-taken branch now counts as taken-biased
    assert predictor.static_direction[0x300] is True


def test_filtering_protects_the_pattern_table():
    """A periodic branch aliasing with a biased one in the PHT: filtering
    removes the pollution, so the filtered configuration mispredicts no
    more than the raw one."""
    events = []
    clock = 0
    for i in range(600):
        clock += 3
        events.append(BranchEvent(0x100, 0x80, True, clock))  # biased
        clock += 3
        events.append(
            BranchEvent(0x104, 0x90, i % 3 != 2, clock)  # TTN pattern
        )
    trace = BranchTrace.from_events(events, name="filter")
    profile = InterleaveProfile(
        branches={
            0x100: BranchStats(600, 600),
            0x104: BranchStats(600, 400),
        }
    )
    raw = simulate_predictor(
        PAgPredictor.conventional(1, 4), trace, track_per_branch=False
    )
    filtered = simulate_predictor(
        BiasFilteredPredictor(PAgPredictor.conventional(1, 4), profile),
        trace,
        track_per_branch=False,
    )
    assert filtered.mispredictions <= raw.mispredictions
    assert filtered.misprediction_rate < 0.05


def test_reset_passes_through():
    backing = PAgPredictor.conventional(16, 4)
    predictor = BiasFilteredPredictor(backing, _profile())
    predictor.access(0x300, True)
    predictor.reset()
    assert backing.bht.read(0x300) == 0
