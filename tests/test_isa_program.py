"""Program container tests."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import INSTRUCTION_SIZE, TEXT_BASE, Program


def _sample_program():
    return Program(
        instructions=[
            Instruction(Opcode.ADDI, rd=5, imm=1),
            Instruction(Opcode.BEQ, rs1=5, rs2=0, imm=8),
            Instruction(Opcode.JAL, rd=0, imm=-4),
            Instruction(Opcode.HALT),
        ],
        data=b"\x01\x02\x03",
        symbols={"main": TEXT_BASE, "loop": TEXT_BASE + 4},
        name="sample",
    )


def test_address_index_round_trip():
    program = _sample_program()
    for index in range(len(program)):
        assert program.index_of(program.address_of(index)) == index


def test_fetch_returns_instruction_at_address():
    program = _sample_program()
    assert program.fetch(TEXT_BASE + 4).opcode is Opcode.BEQ


def test_misaligned_address_rejected():
    program = _sample_program()
    with pytest.raises(ValueError):
        program.index_of(TEXT_BASE + 2)


def test_out_of_range_address_rejected():
    program = _sample_program()
    with pytest.raises(ValueError):
        program.index_of(TEXT_BASE + 4 * len(program))


def test_entry_point_prefers_main_symbol():
    program = _sample_program()
    assert program.entry_point == TEXT_BASE
    no_main = Program(instructions=[Instruction(Opcode.HALT)])
    assert no_main.entry_point == no_main.text_base


def test_static_conditional_branches():
    program = _sample_program()
    assert program.static_conditional_branches() == [TEXT_BASE + 4]


def test_listing_contains_labels_and_addresses():
    listing = _sample_program().listing()
    assert "main:" in listing
    assert "loop:" in listing
    assert f"0x{TEXT_BASE:08x}" in listing


def test_image_round_trip():
    program = _sample_program()
    text, data = program.to_image()
    assert len(text) == len(program) * INSTRUCTION_SIZE
    restored = Program.from_image(
        text, data, symbols=program.symbols, name="sample"
    )
    assert restored.instructions == [
        Instruction(i.opcode, rd=i.rd, rs1=i.rs1, rs2=i.rs2, imm=i.imm)
        for i in program.instructions
    ]
    assert restored.data == program.data


def test_from_image_rejects_ragged_text():
    with pytest.raises(ValueError):
        Program.from_image(b"\x00\x01\x02")
