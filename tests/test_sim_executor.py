"""Per-opcode semantics tests for the interpreter.

Each test assembles a tiny program, runs it, and checks architectural
state — covering ALU wrap/shift/division semantics, memory, control flow,
the branch hook contract, and fuel exhaustion.
"""

import pytest

from repro.asm.assembler import assemble
from repro.sim.executor import FuelExhausted, SimulationError
from repro.sim.machine import Simulator
from repro.sim.state import wrap32


def run_asm(body, input_data=b"", fuel=100_000, hook=None):
    program = assemble(f"main:\n{body}\n    halt\n")
    simulator = Simulator(program, input_data=input_data, branch_hook=hook)
    simulator.run(max_instructions=fuel, allow_truncation=False)
    return simulator


def reg(simulator, name):
    from repro.isa.registers import register_number

    return simulator.state.read(register_number(name))


# -- ALU ---------------------------------------------------------------------


def test_add_sub():
    sim = run_asm("li t0, 7\nli t1, 5\nadd t2, t0, t1\nsub t3, t0, t1")
    assert reg(sim, "t2") == 12
    assert reg(sim, "t3") == 2


def test_add_wraps_to_32_bits():
    sim = run_asm("li t0, 0x7FFFFFFF\nli t1, 1\nadd t2, t0, t1")
    assert reg(sim, "t2") == -(1 << 31)


def test_mul_wraps():
    sim = run_asm("li t0, 0x10000\nli t1, 0x10001\nmul t2, t0, t1")
    assert reg(sim, "t2") == wrap32(0x10000 * 0x10001)


def test_div_truncates_toward_zero():
    sim = run_asm("li t0, -7\nli t1, 2\ndiv t2, t0, t1\nrem t3, t0, t1")
    assert reg(sim, "t2") == -3
    assert reg(sim, "t3") == -1


def test_div_by_zero_convention():
    sim = run_asm("li t0, 9\nli t1, 0\ndiv t2, t0, t1\nrem t3, t0, t1")
    assert reg(sim, "t2") == -1
    assert reg(sim, "t3") == 9


def test_logic_ops():
    sim = run_asm(
        "li t0, 0xF0\nli t1, 0x3C\n"
        "and t2, t0, t1\nor t3, t0, t1\nxor t4, t0, t1"
    )
    assert reg(sim, "t2") == 0x30
    assert reg(sim, "t3") == 0xFC
    assert reg(sim, "t4") == 0xCC


def test_shifts():
    sim = run_asm(
        "li t0, -8\nli t1, 1\n"
        "sll t2, t0, t1\nsrl t3, t0, t1\nsra t4, t0, t1"
    )
    assert reg(sim, "t2") == -16
    assert reg(sim, "t3") == 0x7FFFFFFC
    assert reg(sim, "t4") == -4


def test_shift_amount_uses_low_five_bits():
    sim = run_asm("li t0, 1\nli t1, 33\nsll t2, t0, t1")
    assert reg(sim, "t2") == 2


def test_slt_signed_vs_unsigned():
    sim = run_asm(
        "li t0, -1\nli t1, 1\nslt t2, t0, t1\nsltu t3, t0, t1"
    )
    assert reg(sim, "t2") == 1   # -1 < 1 signed
    assert reg(sim, "t3") == 0   # 0xFFFFFFFF > 1 unsigned


def test_immediate_alu_ops():
    sim = run_asm(
        "li t0, 10\naddi t1, t0, -3\nandi t2, t0, 8\n"
        "ori t3, t0, 5\nxori t4, t0, 6\nslti t5, t0, 11"
    )
    assert reg(sim, "t1") == 7
    assert reg(sim, "t2") == 8
    assert reg(sim, "t3") == 15
    assert reg(sim, "t4") == 12
    assert reg(sim, "t5") == 1


def test_immediate_shifts():
    sim = run_asm("li t0, -4\nslli t1, t0, 2\nsrli t2, t0, 28\nsrai t3, t0, 1")
    assert reg(sim, "t1") == -16
    assert reg(sim, "t2") == 0xF
    assert reg(sim, "t3") == -2


def test_lui_shift_matches_li_expansion():
    sim = run_asm("lui t0, 1\nori t0, t0, 5")
    assert reg(sim, "t0") == (1 << 13) | 5


def test_writes_to_x0_are_discarded():
    sim = run_asm("li zero, 55\nmv t0, zero")
    assert reg(sim, "t0") == 0


# -- memory --------------------------------------------------------------------


def test_word_store_load():
    sim = run_asm(
        "li t0, 0x400000\nli t1, -99\nsw t1, 4(t0)\nlw t2, 4(t0)"
    )
    assert reg(sim, "t2") == -99


def test_byte_store_load_unsigned():
    sim = run_asm(
        "li t0, 0x400000\nli t1, 0x1FF\nsb t1, 0(t0)\nlb t2, 0(t0)"
    )
    assert reg(sim, "t2") == 0xFF


def test_data_segment_loaded():
    program = assemble(
        ".data\nvalue: .word 4242\n.text\nmain:\n"
        "la t0, value\nlw t1, 0(t0)\nhalt\n"
    )
    sim = Simulator(program)
    sim.run(allow_truncation=False)
    assert reg(sim, "t1") == 4242


# -- control flow -----------------------------------------------------------------


def test_conditional_branch_taken_and_not():
    sim = run_asm(
        """
    li t0, 3
    li t1, 3
    beq t0, t1, taken
    li t2, 111
taken:
    bne t0, t1, missed
    li t3, 222
missed:
    """
    )
    assert reg(sim, "t2") == 0      # skipped by the taken beq
    assert reg(sim, "t3") == 222    # bne fell through


def test_unsigned_branches():
    sim = run_asm(
        """
    li t0, -1
    li t1, 1
    bltu t1, t0, u_taken
    li t2, 1
u_taken:
    bgeu t0, t1, g_taken
    li t3, 1
g_taken:
    """
    )
    assert reg(sim, "t2") == 0  # 1 < 0xFFFFFFFF unsigned: branch taken
    assert reg(sim, "t3") == 0


def test_jal_links_return_address():
    sim = run_asm(
        """
    call func
    j end
func:
    li t0, 77
    ret
end:
    """
    )
    assert reg(sim, "t0") == 77


def test_jalr_computed_target():
    sim = run_asm(
        """
    la t0, dest
    jalr t1, t0, 0
dest:
    li t2, 5
    """
    )
    assert reg(sim, "t2") == 5
    assert reg(sim, "t1") != 0  # link register written


def test_loop_branch_counts():
    sim = run_asm(
        """
    li t0, 0
    li t1, 6
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    """
    )
    assert sim.executor.conditional_branch_count == 6
    assert sim.executor.taken_branch_count == 5


# -- hooks, fuel, faults ---------------------------------------------------------


class _RecordingHook:
    def __init__(self):
        self.events = []

    def on_branch(self, pc, target, taken, instruction_count):
        self.events.append((pc, target, taken, instruction_count))


def test_branch_hook_sees_timestamp_and_target():
    hook = _RecordingHook()
    run_asm(
        """
    li t0, 0
    li t1, 2
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    """,
        hook=hook,
    )
    assert len(hook.events) == 2
    first, second = hook.events
    assert first[2] is True and second[2] is False
    assert first[0] == second[0]          # same static branch
    assert first[1] < first[0]            # backward target
    # time stamps are the retired-instruction counts before each branch
    assert second[3] > first[3]


def test_fuel_exhaustion_raises():
    program = assemble("main: j main\n")
    simulator = Simulator(program)
    with pytest.raises(FuelExhausted):
        simulator.run(max_instructions=100, allow_truncation=False)


def test_fuel_exhaustion_truncates_when_allowed():
    program = assemble("main: j main\n")
    result = Simulator(program).run(max_instructions=100)
    assert not result.halted
    assert result.instructions == 100


def test_pc_escape_raises():
    program = assemble("main: nop\n")  # no halt: falls off the end
    simulator = Simulator(program)
    with pytest.raises(SimulationError):
        simulator.run(allow_truncation=False)
