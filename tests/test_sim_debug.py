"""Single-stepper tests."""

import pytest

from repro.asm.assembler import assemble
from repro.sim.debug import SingleStepper, trace_listing

SOURCE = """
main:
    li t0, 3
loop:
    addi t0, t0, -1
    bgtz t0, loop
    li a0, 0
    li a1, 7
    ecall
"""


def test_step_reports_register_writes():
    stepper = SingleStepper(assemble(SOURCE))
    record = stepper.step()
    assert record is not None
    assert record.pc == stepper.program.text_base
    assert record.register_writes == {"t0": 3}
    assert record.disassembly.startswith("addi t0")


def test_branch_steps_report_direction():
    stepper = SingleStepper(assemble(SOURCE))
    records = stepper.run(limit=100)
    branch_records = [r for r in records if r.taken_branch is not None]
    assert [r.taken_branch for r in branch_records] == [True, True, False]


def test_run_stops_on_halt_and_reports_exit():
    stepper = SingleStepper(assemble(SOURCE))
    records = stepper.run(limit=1000)
    assert stepper.halted
    assert stepper.simulator.state.exit_code == 7
    # step after halt returns None
    assert stepper.step() is None
    # indices are consecutive from zero
    assert [r.index for r in records] == list(range(len(records)))


def test_run_limit_validation():
    stepper = SingleStepper(assemble(SOURCE))
    with pytest.raises(ValueError):
        stepper.run(limit=0)


def test_run_until_breakpoint():
    program = assemble(SOURCE)
    stepper = SingleStepper(program)
    breakpoint_addr = program.symbols["loop"]
    records = stepper.run_until(breakpoint_addr)
    assert stepper.simulator.state.pc == breakpoint_addr
    assert len(records) == 1  # just the li before the loop label


def test_stepping_matches_batch_execution():
    from repro.sim.machine import Simulator

    program = assemble(SOURCE)
    stepper = SingleStepper(program)
    stepper.run(limit=1000)
    batch = Simulator(program)
    batch.run(allow_truncation=False)
    assert (
        stepper.simulator.executor.instruction_count
        == batch.executor.instruction_count
    )
    assert stepper.simulator.state.regs == batch.state.regs


def test_trace_listing_renders_lines():
    text = trace_listing(assemble(SOURCE), limit=5)
    lines = text.splitlines()
    assert len(lines) == 5
    assert "addi t0" in lines[0]
    assert "0x" in lines[0]


def test_step_record_render_contains_direction():
    stepper = SingleStepper(assemble(SOURCE))
    records = stepper.run(limit=3)
    rendered = records[2].render()
    assert "taken" in rendered
