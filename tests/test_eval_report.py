"""Result-rendering tests."""

import pytest

from repro.eval.report import render_table, to_csv, write_csv


def test_render_table_aligns_columns():
    text = render_table(
        ["name", "value"],
        [("alpha", 1), ("b", 23456)],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # all rows have the same width
    assert len(lines[3]) == len(lines[4])


def test_render_table_formats_floats():
    text = render_table(["x"], [(0.123456,)])
    assert "0.1235" in text


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [(1,)])


def test_to_csv():
    csv = to_csv(["a", "b"], [(1, "x"), (2, "y")])
    assert csv == "a,b\n1,x\n2,y\n"


def test_to_csv_rejects_embedded_commas():
    with pytest.raises(ValueError):
        to_csv(["a"], [("x,y",)])


def test_write_csv(tmp_path):
    path = tmp_path / "out.csv"
    write_csv(path, ["n"], [(7,)])
    assert path.read_text() == "n\n7\n"
