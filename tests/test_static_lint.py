"""Static lint/verifier tests: every diagnostic code, and the clean path."""

from repro.asm.assembler import assemble
from repro.static_analysis import lint_program, lint_source

CLEAN = """
main:
    addi t0, zero, 4
loop:
    addi t0, t0, -1
    bne t0, zero, loop
    halt
"""


def codes(report):
    return [d.code for d in report.diagnostics]


def test_clean_program_has_no_diagnostics():
    report = lint_program(assemble(CLEAN))
    assert report.clean and report.ok
    assert report.render().endswith("clean")


def test_empty_program_warns():
    report = lint_program(assemble(""))
    assert codes(report) == ["empty-program"]
    assert report.ok  # warning, not error
    assert not report.clean


def test_unreachable_block_is_reported():
    program = assemble(
        """
        main:
            halt
        orphan:
            addi t0, zero, 1
            halt
        """
    )
    report = lint_program(program)
    assert codes(report) == ["unreachable-after-unconditional"]
    [diag] = report.diagnostics
    assert diag.severity == "warning"
    assert diag.address == program.symbols["orphan"]


def test_called_code_is_not_unreachable():
    report = lint_program(
        assemble(
            """
            main:
                call helper
                halt
            helper:
                ret
            """
        )
    )
    assert "unreachable" not in codes(report)


def test_branch_to_data_is_an_error():
    report = lint_program(
        assemble(
            """
            .data
            blob: .word 1
            .text
            main:
                beq a0, zero, blob
                halt
            """
        )
    )
    assert "branch-to-data" in codes(report)
    assert not report.ok


def test_fallthrough_off_end_is_an_error():
    report = lint_program(
        assemble(
            """
            main:
                addi t0, zero, 1
            """
        )
    )
    assert "fallthrough-end" in codes(report)


def test_program_ending_in_conditional_branch_falls_through():
    report = lint_program(
        assemble(
            """
            main:
                addi t0, zero, 3
            loop:
                addi t0, t0, -1
                bne t0, zero, loop
            """
        )
    )
    # the not-taken path exits the text segment
    assert "fallthrough-end" in codes(report)


def test_trailing_skip_padding_is_not_flagged():
    report = lint_program(
        assemble(
            """
            main:
                halt
            .skip 8
            """
        )
    )
    assert report.clean


def test_use_before_def_of_temporary():
    report = lint_program(
        assemble(
            """
            main:
                add a0, t0, t1
                halt
            """
        )
    )
    assert codes(report).count("use-before-def") == 2
    messages = " ".join(d.message for d in report.diagnostics)
    assert "t0" in messages and "t1" in messages


def test_defined_temporary_is_silent():
    report = lint_program(
        assemble(
            """
            main:
                addi t0, zero, 5
                add a0, t0, t0
                halt
            """
        )
    )
    assert report.clean


def test_call_clobbers_temporaries():
    report = lint_program(
        assemble(
            """
            main:
                addi t0, zero, 5
                call helper
                add a0, a0, t0
                halt
            helper:
                ret
            """
        )
    )
    # the call clobbers t0 before the read: the write is a dead store and
    # the read may see garbage — both ends of the same defect
    assert codes(report) == ["dead-store", "use-before-def"]
    assert all("t0" in d.message for d in report.diagnostics)


def test_must_defined_joins_over_paths():
    # t0 is written on only one arm of the diamond: the join may read it
    # undefined
    report = lint_program(
        assemble(
            """
            main:
                beq a0, zero, join
                addi t0, zero, 1
            join:
                add a0, t0, zero
                halt
            """
        )
    )
    assert "use-before-def" in codes(report)


def test_check_registers_can_be_disabled():
    report = lint_program(
        assemble(
            """
            main:
                add a0, t0, t1
                halt
            """
        ),
        check_registers=False,
    )
    assert report.clean


def test_lint_source_reports_assembly_errors():
    report = lint_source("main:\n    beq t0, zero, nowhere\n")
    assert codes(report) == ["asm-error"]
    assert not report.ok


def test_lint_source_assembles_and_lints():
    report = lint_source(CLEAN, name="clean")
    assert report.name == "clean"
    assert report.clean


def test_diagnostics_sorted_by_address():
    report = lint_program(
        assemble(
            """
            main:
                add a0, t1, zero
                add a0, t0, zero
                halt
            orphan:
                halt
            """
        )
    )
    addresses = [
        d.address for d in report.diagnostics if d.address is not None
    ]
    assert addresses == sorted(addresses)


def test_render_includes_severity_and_code():
    report = lint_program(
        assemble(
            """
            .data
            blob: .word 1
            .text
            main:
                beq a0, zero, blob
                halt
            """
        )
    )
    rendered = report.render()
    assert "error" in rendered and "[branch-to-data]" in rendered
    assert "1 error(s)" in rendered
