"""Synthetic trace generator tests."""

import numpy as np
import pytest

from repro.trace.synthetic import (
    Behavior,
    Phase,
    SyntheticBranch,
    SyntheticWorkload,
    make_phased_workload,
)


def test_branch_validation():
    with pytest.raises(ValueError):
        SyntheticBranch(0x10, Behavior.BIASED, bias=1.5)
    with pytest.raises(ValueError):
        SyntheticBranch(0x10, Behavior.PATTERN, pattern="TX")
    with pytest.raises(ValueError):
        SyntheticBranch(0x10, Behavior.LOOP, trip_count=0)


def test_phase_validation():
    branch = SyntheticBranch(0x10)
    with pytest.raises(ValueError):
        Phase((), iterations=5)
    with pytest.raises(ValueError):
        Phase((branch,), iterations=0)
    with pytest.raises(ValueError):
        Phase((branch,), mean_gap=0)


def test_generation_is_deterministic():
    workload = make_phased_workload(3, 4, iterations=50, seed=1)
    a = workload.generate(seed=9)
    b = workload.generate(seed=9)
    assert np.array_equal(a.pcs, b.pcs)
    assert np.array_equal(a.taken, b.taken)
    assert np.array_equal(a.timestamps, b.timestamps)


def test_different_seeds_differ():
    workload = make_phased_workload(3, 4, iterations=50, seed=1)
    a = workload.generate(seed=9)
    b = workload.generate(seed=10)
    assert not np.array_equal(a.taken, b.taken)


def test_timestamps_strictly_increasing():
    trace = make_phased_workload(4, 5, iterations=40, seed=2).generate(3)
    diffs = np.diff(trace.timestamps.astype(np.int64))
    assert (diffs > 0).all()


def test_event_count_matches_schedule():
    workload = make_phased_workload(3, 4, iterations=25, seed=0)
    trace = workload.generate(0)
    assert len(trace) == 3 * 4 * 25


def test_pattern_branch_is_periodic():
    branch = SyntheticBranch(0x40, Behavior.PATTERN, pattern="TTN")
    workload = SyntheticWorkload(phases=[Phase((branch,), iterations=9)])
    trace = workload.generate(0)
    assert list(trace.taken) == [True, True, False] * 3


def test_loop_branch_exits_every_trip_count():
    branch = SyntheticBranch(0x40, Behavior.LOOP, trip_count=4)
    workload = SyntheticWorkload(phases=[Phase((branch,), iterations=8)])
    trace = workload.generate(0)
    assert list(trace.taken) == [True, True, True, False] * 2


def test_correlated_branch_copies_previous_outcome():
    leader = SyntheticBranch(0x40, Behavior.PATTERN, pattern="TN")
    follower = SyntheticBranch(0x44, Behavior.CORRELATED)
    workload = SyntheticWorkload(
        phases=[Phase((leader, follower), iterations=6)]
    )
    trace = workload.generate(0)
    outcomes = list(trace.taken)
    assert outcomes[0::2] == outcomes[1::2]


def test_biased_branch_respects_bias():
    branch = SyntheticBranch(0x40, Behavior.BIASED, bias=0.99)
    workload = SyntheticWorkload(phases=[Phase((branch,), iterations=500)])
    trace = workload.generate(1)
    assert trace.taken.mean() > 0.95


def test_ground_truth_working_sets_partition_pcs():
    workload = make_phased_workload(5, 6, seed=3)
    sets = workload.ground_truth_working_sets()
    flat = [pc for s in sets for pc in s]
    assert len(flat) == len(set(flat)) == 30


def test_scattered_pcs_are_unique_and_word_aligned():
    workload = make_phased_workload(4, 8, seed=5, text_span=1 << 16)
    pcs = [b.pc for phase in workload.phases for b in phase.branches]
    assert len(set(pcs)) == len(pcs)
    assert all(pc % 4 == 0 for pc in pcs)


def test_text_span_too_small_rejected():
    with pytest.raises(ValueError):
        make_phased_workload(10, 10, text_span=64)


def test_schedule_controls_phase_revisits():
    workload = make_phased_workload(2, 3, iterations=10, seed=0)
    workload.schedule = [0, 1, 0]
    trace = workload.generate(0)
    assert len(trace) == 3 * 10 * 3


def test_invalid_factory_arguments():
    with pytest.raises(ValueError):
        make_phased_workload(0, 5)
    with pytest.raises(ValueError):
        make_phased_workload(5, 0)
