"""Workload builder and input-generator tests."""

import pytest

from repro.workloads.build import (
    BuiltWorkload,
    InputSpec,
    KernelCall,
    PhaseSpec,
    WorkloadSpec,
    build_workload,
    replicated_calls,
    run_workload,
)
from repro.workloads.inputs import (
    binary_runs,
    make_input,
    mixed_input,
    text_input,
)


def _tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        phases=(
            PhaseSpec(
                (
                    KernelCall("rle", 0, (40,)),
                    KernelCall("crc", 0, (20,)),
                ),
                iterations=3,
            ),
        ),
        rounds=2,
        input=InputSpec(kind="binary", size=512, seed=1),
        fuel=2_000_000,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


# -- inputs -------------------------------------------------------------------


def test_text_input_deterministic_and_sized():
    a = text_input(1000, seed=3)
    b = text_input(1000, seed=3)
    assert a == b and len(a) == 1000
    assert a != text_input(1000, seed=4)


def test_text_input_looks_like_text():
    data = text_input(2000, seed=1)
    letters = sum(1 for b in data if 97 <= b <= 122)
    assert letters > len(data) * 0.5


def test_binary_runs_have_runs():
    data = binary_runs(2000, seed=2, mean_run=8)
    repeats = sum(1 for i in range(1, len(data)) if data[i] == data[i - 1])
    assert repeats > len(data) * 0.5


def test_mixed_input_sized():
    assert len(mixed_input(3000, seed=5)) == 3000


def test_make_input_dispatch_and_validation():
    assert make_input("text", 100, 1) == text_input(100, 1)
    with pytest.raises(KeyError):
        make_input("audio", 100, 1)
    with pytest.raises(ValueError):
        text_input(-1)
    with pytest.raises(ValueError):
        binary_runs(10, mean_run=0)


# -- spec validation -------------------------------------------------------------


def test_kernel_call_validation():
    with pytest.raises(ValueError):
        KernelCall("rle", instance=-1)
    with pytest.raises(ValueError):
        KernelCall("rle", args=(1, 2, 3, 4))


def test_phase_validation():
    with pytest.raises(ValueError):
        PhaseSpec((), iterations=1)
    with pytest.raises(ValueError):
        PhaseSpec((KernelCall("rle"),), iterations=0)


def test_workload_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(name="x", phases=())
    with pytest.raises(ValueError):
        _tiny_spec(rounds=0)


def test_unknown_kernel_rejected_at_build():
    spec = _tiny_spec(
        phases=(PhaseSpec((KernelCall("nonexistent"),), iterations=1),)
    )
    with pytest.raises(KeyError):
        build_workload(spec)


# -- building --------------------------------------------------------------------


def test_build_assigns_disjoint_scratch():
    spec = _tiny_spec(
        phases=(
            PhaseSpec(
                (
                    KernelCall("rle", 0, (10,)),
                    KernelCall("rle", 1, (10,)),
                    KernelCall("hashtab", 0, (5,)),
                ),
                iterations=2,
            ),
        )
    )
    built = build_workload(spec)
    regions = sorted(built.scratch_map.values())
    assert len(regions) == 3
    assert len(set(regions)) == 3
    # 4 KiB aligned
    assert all(r % 0x1000 == 0 for r in regions)


def test_scratch_free_kernels_get_no_region():
    built = build_workload(_tiny_spec())
    assert ("crc", 0) not in built.scratch_map
    assert ("rle", 0) in built.scratch_map


def test_build_is_deterministic():
    a = build_workload(_tiny_spec())
    b = build_workload(_tiny_spec())
    assert a.program.instructions == b.program.instructions
    assert a.input_data == b.input_data


def test_text_scatter_spreads_kernels():
    packed = build_workload(_tiny_spec(text_scatter=None))
    scattered = build_workload(_tiny_spec())
    assert len(scattered.program) > len(packed.program) + 256


def test_static_branch_count_property():
    built = build_workload(_tiny_spec())
    assert built.static_conditional_branches > 5


def test_run_workload_halts_and_prints_checksum():
    result = run_workload(build_workload(_tiny_spec()))
    assert result.halted
    assert result.exit_code == 0
    assert result.output.endswith(b"\n")
    int(result.output.split()[-1])  # parses as the driver's checksum


def test_run_workload_respects_fuel_override():
    result = run_workload(build_workload(_tiny_spec()), max_instructions=500)
    assert not result.halted
    assert result.instructions == 500


def test_runs_are_reproducible():
    built = build_workload(_tiny_spec())
    out_a = run_workload(built).output
    out_b = run_workload(build_workload(_tiny_spec())).output
    assert out_a == out_b


def test_replicated_calls_helper():
    calls = replicated_calls("fsm", 3, (10,))
    assert [c.instance for c in calls] == [0, 1, 2]
    assert all(c.args == (10,) for c in calls)
    with pytest.raises(ValueError):
        replicated_calls("fsm", 0)


def test_built_workload_is_frozen_dataclass():
    built = build_workload(_tiny_spec())
    assert isinstance(built, BuiltWorkload)
    with pytest.raises(AttributeError):
        built.program = None
