"""Trace capture and persistence tests."""

import numpy as np
import pytest

from repro.trace.capture import TraceCapture
from repro.trace.events import BranchEvent, BranchTrace
from repro.trace.io import (
    load_trace,
    load_trace_ndjson,
    save_trace,
    save_trace_ndjson,
)


def _fill(capture, n=10):
    for i in range(n):
        capture.on_branch(0x1000 + 4 * (i % 3), 0x2000, i % 2 == 0, 5 * i)


def test_capture_records_events_in_order():
    capture = TraceCapture()
    _fill(capture, 5)
    trace = capture.finish("cap")
    assert len(trace) == 5
    assert trace.name == "cap"
    assert [e.timestamp for e in trace] == [0, 5, 10, 15, 20]


def test_capture_limit_stops_recording():
    capture = TraceCapture(limit=3)
    _fill(capture, 10)
    assert len(capture) == 3
    assert capture.saturated


def test_capture_without_limit_never_saturates():
    capture = TraceCapture()
    _fill(capture, 4)
    assert not capture.saturated


def _sample_trace():
    return BranchTrace.from_events(
        [
            BranchEvent(0x100, 0x80, True, 3),
            BranchEvent(0x104, 0x200, False, 9),
            BranchEvent(0x100, 0x80, True, 14),
        ],
        name="roundtrip",
    )


def _traces_equal(a, b):
    return (
        a.name == b.name
        and np.array_equal(a.pcs, b.pcs)
        and np.array_equal(a.targets, b.targets)
        and np.array_equal(a.taken, b.taken)
        and np.array_equal(a.timestamps, b.timestamps)
    )


def test_npz_round_trip(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "t.npz"
    save_trace(trace, path)
    assert _traces_equal(load_trace(path), trace)


def test_ndjson_round_trip(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "t.ndjson"
    save_trace_ndjson(trace, path)
    assert _traces_equal(load_trace_ndjson(path), trace)


def test_ndjson_rejects_foreign_file(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        load_trace_ndjson(path)


def test_ndjson_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.ndjson"
    path.write_text("")
    with pytest.raises(ValueError):
        load_trace_ndjson(path)


def test_npz_preserves_empty_trace(tmp_path):
    empty = BranchTrace.from_events([], name="empty")
    path = tmp_path / "e.npz"
    save_trace(empty, path)
    assert len(load_trace(path)) == 0
