"""Static-vs-dynamic verification pass (`repro verify-static`)."""

from conftest import TEST_THRESHOLD
from repro.eval.static_compare import (
    format_verify_static,
    run_verify_static,
)


def test_verify_static_rows(runner):
    rows = run_verify_static(
        runner, benchmarks=["compress", "chess"], threshold=TEST_THRESHOLD
    )
    assert [r.benchmark for r in rows] == ["compress", "chess"]
    for row in rows:
        # the heuristics cover every static branch, so every profiled
        # branch is covered
        assert 0 < row.covered_branches <= row.profiled_branches
        assert row.covered_branches <= row.static_branches
        assert row.executions > 0
        # a 50% hit rate is a coin flip; the catalogue must beat it
        assert 0.5 < row.hit_rate <= 1.0
        assert 0.0 <= row.hits <= row.executions
        assert 0.5 < row.majority_rate <= 1.0
        # the per-heuristic breakdown tiles the covered totals exactly
        assert sum(h.branches for h in row.heuristics) == (
            row.covered_branches
        )
        assert sum(h.executions for h in row.heuristics) == row.executions
        assert abs(sum(h.hits for h in row.heuristics) - row.hits) < 1e-6
        # edge scores are well-formed fractions of the right edge sets
        assert row.common_edges <= min(
            row.predicted_edges, row.measured_edges
        )
        if row.predicted_edges:
            assert row.edge_precision == (
                row.common_edges / row.predicted_edges
            )
        if row.measured_edges:
            assert row.edge_recall == row.common_edges / row.measured_edges
        # working-set shapes are non-degenerate on real benchmarks
        assert row.predicted_sets > 0 and row.measured_sets > 0
        assert row.predicted_largest > 0 and row.measured_largest > 0


def test_verify_static_matches_predictor_hit_rate(runner):
    """The dynamic-weighted hit rate IS the static-heur predictor's hit
    rate: both integrate per-branch agreement over the same executions."""
    from repro.eval.ablations import run_predictor_family

    [row] = run_verify_static(
        runner, benchmarks=["compress"], threshold=TEST_THRESHOLD
    )
    rates = run_predictor_family(runner, ["compress"])["compress"]
    miss_rate = rates["static-heur"]
    assert abs((1.0 - miss_rate) - row.hit_rate) < 1e-6


def test_verify_static_as_dict_payload(runner):
    [row] = run_verify_static(
        runner, benchmarks=["compress"], threshold=TEST_THRESHOLD
    )
    payload = row.as_dict()
    assert payload["benchmark"] == "compress"
    assert payload["hit_rate"] == row.hit_rate
    assert {"predicted", "measured", "common", "precision", "recall"} == (
        set(payload["edges"])
    )
    assert {h["heuristic"] for h in payload["heuristics"]} == {
        h.heuristic for h in row.heuristics
    }
    assert payload["working_sets"]["measured_sets"] == row.measured_sets


def test_format_verify_static(runner):
    rows = run_verify_static(
        runner, benchmarks=["compress"], threshold=TEST_THRESHOLD
    )
    text = format_verify_static(rows)
    assert "hit rate" in text and "compress" in text
    assert "suite dynamic hit rate" in text
    assert "Static-vs-dynamic verification" in format_verify_static([])
