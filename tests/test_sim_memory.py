"""Sparse memory tests, including a property-based store/load check."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemAccessError
from repro.sim.memory import PAGE_SIZE, Memory


def test_uninitialised_memory_reads_zero():
    memory = Memory()
    assert memory.load_byte(0x1234) == 0
    assert memory.load_word(0x1234) == 0
    assert memory.resident_pages == 0


def test_byte_store_load():
    memory = Memory()
    memory.store_byte(100, 0xAB)
    assert memory.load_byte(100) == 0xAB


def test_byte_store_masks_to_8_bits():
    memory = Memory()
    memory.store_byte(0, 0x1FF)
    assert memory.load_byte(0) == 0xFF


def test_word_store_load_signed():
    memory = Memory()
    memory.store_word(64, -123456)
    assert memory.load_word(64) == -123456


def test_word_is_little_endian():
    memory = Memory()
    memory.store_word(0, 0x0A0B0C0D)
    assert [memory.load_byte(i) for i in range(4)] == [0x0D, 0x0C, 0x0B, 0x0A]


def test_cross_page_word_access():
    memory = Memory()
    address = PAGE_SIZE - 2
    memory.store_word(address, 0x11223344)
    assert memory.load_word(address) == 0x11223344
    assert memory.resident_pages == 2


def test_bulk_bytes_round_trip():
    memory = Memory()
    payload = bytes(range(200))
    memory.store_bytes(5000, payload)
    assert memory.load_bytes(5000, 200) == payload


def test_cstring_load():
    memory = Memory()
    memory.store_bytes(0x400, b"hello\x00world")
    assert memory.load_cstring(0x400) == b"hello"


def test_unterminated_cstring_raises():
    memory = Memory()
    memory.store_bytes(0, b"\x01" * 16)
    with pytest.raises(MemAccessError):
        memory.load_cstring(0, limit=8)


def test_addresses_wrap_to_32_bits():
    memory = Memory()
    memory.store_byte(0x1_0000_0010, 7)
    assert memory.load_byte(0x10) == 7


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 4),
    st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
)
def test_word_round_trip_property(address, value):
    memory = Memory()
    memory.store_word(address, value)
    assert memory.load_word(address) == value


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=1 << 16),
    st.integers(min_value=0, max_value=255),
), max_size=50))
def test_last_write_wins_property(writes):
    memory = Memory()
    expected = {}
    for address, value in writes:
        memory.store_byte(address, value)
        expected[address] = value
    for address, value in expected.items():
        assert memory.load_byte(address) == value
