"""First-level history table tests."""

import pytest

from repro.predictors.bht import BranchHistoryTable, InfiniteBHT
from repro.predictors.indexing import PCModuloIndex, StaticIndexMap


def test_history_shifts_in_outcomes():
    bht = BranchHistoryTable(PCModuloIndex(16), history_bits=4)
    for taken in (True, False, True, True):
        bht.update(0x100, taken)
    assert bht.read(0x100) == 0b1011


def test_history_masks_to_width():
    bht = BranchHistoryTable(PCModuloIndex(16), history_bits=2)
    for _ in range(5):
        bht.update(0x100, True)
    assert bht.read(0x100) == 0b11


def test_read_and_update_returns_pre_update_pattern():
    bht = BranchHistoryTable(PCModuloIndex(16), history_bits=4)
    bht.update(0x100, True)
    pattern = bht.read_and_update(0x100, False)
    assert pattern == 0b1
    assert bht.read(0x100) == 0b10


def test_aliasing_branches_share_history():
    bht = BranchHistoryTable(PCModuloIndex(4), history_bits=4)
    pc_a, pc_b = 0x1000, 0x1000 + 4 * 4  # same entry mod 4
    bht.update(pc_a, True)
    assert bht.read(pc_b) == 0b1  # interference, by construction


def test_allocated_indexing_separates_aliases():
    assignment = {0x1000: 0, 0x1010: 1}
    bht = BranchHistoryTable(
        StaticIndexMap(4, assignment), history_bits=4
    )
    bht.update(0x1000, True)
    assert bht.read(0x1010) == 0


def test_bht_reset():
    bht = BranchHistoryTable(PCModuloIndex(8), history_bits=4)
    bht.update(0x100, True)
    bht.reset()
    assert bht.read(0x100) == 0


def test_bht_validation():
    with pytest.raises(ValueError):
        BranchHistoryTable(PCModuloIndex(8), history_bits=0)


def test_infinite_bht_never_aliases():
    bht = InfiniteBHT(history_bits=4)
    for pc in range(0x1000, 0x9000, 4):
        bht.update(pc, True)
    assert bht.size == 0x8000 // 4
    assert bht.read(0x1000) == 0b1
    assert bht.read(0x1004) == 0b1
    assert bht.read(0xFFFF0) == 0  # unseen branch


def test_infinite_bht_read_and_update():
    bht = InfiniteBHT(history_bits=3)
    assert bht.read_and_update(0x10, True) == 0
    assert bht.read_and_update(0x10, True) == 1
    assert bht.read(0x10) == 0b11


def test_infinite_bht_reset():
    bht = InfiniteBHT(history_bits=3)
    bht.update(0x10, True)
    bht.reset()
    assert bht.size == 0
