#!/usr/bin/env python3
"""A tour of branch working set analysis on controlled inputs.

Part 1 replays the paper's Figure 1 worked example event by event.
Part 2 generates a synthetic phased workload whose working sets are known
by construction and shows the analysis recovering them exactly.
Part 3 demonstrates the threshold refinement (paper §4.2).

Run:  python examples/working_set_tour.py
"""

from repro.analysis import (
    build_conflict_graph,
    partition_working_sets,
)
from repro.profiling import InterleaveAnalyzer, profile_trace
from repro.trace import make_phased_workload


def figure1_example() -> None:
    print("=== Part 1: the paper's Figure 1 example ===")
    names = {0x100: "A", 0x200: "B", 0x300: "C"}
    analyzer = InterleaveAnalyzer()
    for pc in (0x100, 0x200, 0x300, 0x100):  # A B C A
        analyzer.observe(pc)
    profile = analyzer.finish()
    print("event order: A B C A")
    for (low, high), count in sorted(profile.pairs.items()):
        print(f"  interleave({names[low]}, {names[high]}) = {count}")
    print("  (B,C) never interleave: neither re-executed.\n")


def synthetic_recovery() -> None:
    print("=== Part 2: recovering known working sets ===")
    workload = make_phased_workload(
        n_phases=5,
        branches_per_phase=12,
        iterations=200,
        seed=42,
        text_span=1 << 20,
    )
    trace = workload.generate(seed=43)
    print(f"synthetic trace: {len(trace)} events, "
          f"{len(trace.static_branches())} static branches, "
          f"5 ground-truth phases of 12 branches")

    profile = profile_trace(trace)
    graph = build_conflict_graph(profile, threshold=100)
    partition = partition_working_sets(graph)
    truth = {frozenset(s) for s in workload.ground_truth_working_sets()}
    recovered = {frozenset(s) for s in partition.as_pc_sets()}
    print(f"recovered {partition.count} working sets, "
          f"sizes {sorted(ws.size for ws in partition.sets)}")
    print(f"exact match with ground truth: {recovered == truth}\n")


def threshold_refinement() -> None:
    print("=== Part 3: threshold sensitivity (paper §4.2) ===")
    workload = make_phased_workload(
        n_phases=4, branches_per_phase=10, iterations=300, seed=3,
        text_span=1 << 18,
    )
    profile = profile_trace(workload.generate(seed=4))
    print(f"{'threshold':>10} {'edges':>7} {'sets':>5} {'avg size':>9}")
    for threshold in (1, 100, 500, 1000):
        graph = build_conflict_graph(profile, threshold=threshold)
        partition = partition_working_sets(graph)
        print(f"{threshold:>10} {graph.edge_count:>7} "
              f"{partition.count:>5} "
              f"{partition.average_static_size:>9.1f}")
    print("(the paper: thresholds 100-1000 'show no significant "
          "difference')")


def main() -> None:
    figure1_example()
    synthetic_recovery()
    threshold_refinement()


if __name__ == "__main__":
    main()
