#!/usr/bin/env python3
"""The paper's §6 open question, answered on this substrate.

    "Are the clustered branch mispredictions found in recent work on
    dynamic prediction caused by changes in working set?"

This example detects working-set transitions in a trace (from the trace's
own conflict-graph partition) and compares misprediction density right
after each transition against the steady state, for a synthetic phased
workload and for a simulated benchmark analog.

Run:  python examples/misprediction_clusters.py [scale]
"""

import sys

from repro.analysis import (
    build_conflict_graph,
    detect_transitions,
    misprediction_clustering,
    partition_working_sets,
)
from repro.eval import BenchmarkRunner
from repro.predictors import PAgPredictor
from repro.profiling import profile_trace
from repro.trace import make_phased_workload


def analyse(label, trace, partition):
    report = detect_transitions(trace, partition, window=256, stride=64)
    clustering = misprediction_clustering(
        PAgPredictor.conventional(512, 10),
        trace,
        partition,
        radius=256,
        warmup=1024,
    )
    ratio = clustering.clustering_ratio
    print(f"{label}:")
    print(f"  {len(trace)} events, {partition.count} working sets, "
          f"{len(report.transitions)} transitions detected")
    print(f"  misprediction rate near transitions : "
          f"{clustering.transition_rate:.3%} "
          f"({clustering.transition_events} events)")
    print(f"  misprediction rate in steady state  : "
          f"{clustering.steady_rate:.3%} "
          f"({clustering.steady_events} events)")
    print(f"  clustering ratio: {ratio:.2f}x "
          f"{'-> mispredictions DO cluster at working-set changes' if ratio > 1.1 else '-> no clustering evident'}\n")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    threshold = 100 if scale >= 0.9 else 10

    # controlled case: phases are working sets by construction
    workload = make_phased_workload(
        n_phases=8, branches_per_phase=16, iterations=250, seed=51,
        text_span=1 << 20,
    )
    trace = workload.generate(seed=52)
    partition = partition_working_sets(
        build_conflict_graph(profile_trace(trace), threshold=100)
    )
    analyse("synthetic phased workload", trace, partition)

    # a simulated benchmark analog
    runner = BenchmarkRunner(scale=scale)
    artifacts = runner.artifacts("gs")
    partition = partition_working_sets(
        build_conflict_graph(artifacts.profile, threshold=threshold)
    )
    analyse(f"gs analog (scale={scale})", artifacts.trace, partition)


if __name__ == "__main__":
    main()
