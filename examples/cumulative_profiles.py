#!/usr/bin/env python3
"""Profile input sensitivity and cumulative profiles (paper §5.2).

The paper observed that SimpleScalar profiled with two different inputs
(ss_a / ss_b) produced "significant difference in the table size
requirements", and proposed merging conflict graphs from several profile
runs.  This example reproduces the experiment on the ss analog pair:

1. profile each input separately and size the BHT for each;
2. apply input-A's allocation to input-B's conflict graph (the mismatch
   cost the paper warns about);
3. merge the profiles and show the cumulative allocation covers both.

Run:  python examples/cumulative_profiles.py [scale]
"""

import sys

from repro.allocation import (
    BranchAllocator,
    conflict_cost,
    conventional_cost,
    required_bht_size,
)
from repro.eval import BenchmarkRunner
from repro.profiling import coverage_against, merge_profiles


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    threshold = 100 if scale >= 0.9 else 10
    runner = BenchmarkRunner(scale=scale)

    profile_a = runner.profile("ss_a")
    profile_b = runner.profile("ss_b")
    print(f"ss_a: {profile_a.static_branch_count} statics, "
          f"{profile_a.dynamic_branch_count} dynamic branches")
    print(f"ss_b: {profile_b.static_branch_count} statics, "
          f"{profile_b.dynamic_branch_count} dynamic branches")
    print(f"ss_a covers {coverage_against(profile_a, profile_b):.1%} of "
          f"ss_b's dynamic executions\n")

    alloc_a = BranchAllocator(profile_a, threshold=threshold)
    alloc_b = BranchAllocator(profile_b, threshold=threshold)
    size_a = required_bht_size(
        alloc_a, conventional_cost(alloc_a.graph, 1024)
    ).required_size
    size_b = required_bht_size(
        alloc_b, conventional_cost(alloc_b.graph, 1024)
    ).required_size
    print(f"required BHT size from input A: {size_a}")
    print(f"required BHT size from input B: {size_b}")

    # the mismatch experiment: A's mapping on B's behaviour
    assignment = alloc_a.allocate(max(size_a, size_b)).assignment
    table = max(size_a, size_b)
    mismatch = conflict_cost(
        alloc_b.graph,
        lambda pc: assignment.get(pc, (pc >> 2) % table),
    )
    own = alloc_b.allocate(table).cost
    print(f"\nconflict cost on input B's graph:")
    print(f"  allocation profiled on A : {mismatch}")
    print(f"  allocation profiled on B : {own}")

    # the paper's fix: cumulative profiles
    merged = merge_profiles([profile_a, profile_b], name="ss_merged")
    alloc_m = BranchAllocator(merged, threshold=threshold)
    size_m = required_bht_size(
        alloc_m, conventional_cost(alloc_m.graph, 1024)
    ).required_size
    merged_assignment = alloc_m.allocate(size_m).assignment
    cost_on_a = conflict_cost(
        alloc_a.graph,
        lambda pc: merged_assignment.get(pc, (pc >> 2) % size_m),
    )
    cost_on_b = conflict_cost(
        alloc_b.graph,
        lambda pc: merged_assignment.get(pc, (pc >> 2) % size_m),
    )
    print(f"\ncumulative profile: required size {size_m} "
          f"(A needed {size_a}, B needed {size_b})")
    print(f"  merged allocation cost on A's graph: {cost_on_a}")
    print(f"  merged allocation cost on B's graph: {cost_on_b}")
    print("\n(the paper: cumulative profiles need not blow up the table — "
          "more sets, not bigger ones)")


if __name__ == "__main__":
    main()
