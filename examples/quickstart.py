#!/usr/bin/env python3
"""Quickstart: the whole pipeline on one benchmark analog in ~a minute.

Builds the `compress` analog (assembled from hand-written kernels), runs it
on the miniature RISC simulator while capturing the conditional-branch
trace, performs the paper's working set analysis, computes a branch
allocation, and compares PAg predictors with conventional vs. allocated
BHT indexing.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro.allocation import (
    BranchAllocator,
    conventional_cost,
    required_bht_size,
)
from repro.analysis import working_set_metrics
from repro.predictors import (
    InterferenceFreePAg,
    PAgPredictor,
    simulate_predictor,
)
from repro.profiling import profile_trace
from repro.trace import TraceCapture
from repro.workloads import build_workload, get_benchmark, run_workload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    threshold = 100 if scale >= 0.9 else 10

    # 1. build and simulate the workload, capturing branch events
    spec = get_benchmark("compress", scale=scale)
    built = build_workload(spec)
    print(f"built {spec.name!r}: {len(built.program)} instructions, "
          f"{built.static_conditional_branches} static conditional branches")

    capture = TraceCapture()
    result = run_workload(built, branch_hook=capture)
    trace = capture.finish(spec.name)
    print(f"simulated {result.instructions} instructions -> "
          f"{len(trace)} dynamic conditional branches "
          f"({result.taken_rate:.0%} taken)")

    # 2. the paper's working set analysis
    profile = profile_trace(trace)
    metrics = working_set_metrics(profile, threshold=threshold)
    print(f"\nworking sets (threshold={threshold}): "
          f"{metrics.total_sets} sets, "
          f"avg static size {metrics.average_static_size:.1f}, "
          f"avg dynamic size {metrics.average_dynamic_size:.1f}, "
          f"largest {metrics.largest_size}")

    # 3. branch allocation: how small can the BHT get?
    allocator = BranchAllocator(profile, threshold=threshold)
    baseline = conventional_cost(allocator.graph, 1024)
    sizing = required_bht_size(allocator, baseline)
    print(f"\nconventional 1024-entry BHT conflict cost: {baseline}")
    print(f"branch allocation beats it with just "
          f"{sizing.required_size} entries "
          f"(cost {sizing.achieved_cost})")

    # 4. prediction accuracy (PAg, 4096-entry PHT)
    print("\nPAg misprediction rates (12-bit history):")
    for label, predictor in [
        ("conventional @1024", PAgPredictor.conventional(1024, 12)),
        ("allocated    @1024",
         PAgPredictor.allocated(allocator.allocate(1024).index_map(), 12)),
        ("allocated    @128",
         PAgPredictor.allocated(allocator.allocate(128).index_map(), 12)),
        ("interference free ", InterferenceFreePAg(12)),
    ]:
        stats = simulate_predictor(predictor, trace, track_per_branch=False)
        print(f"  {label}: {stats.misprediction_rate:.4%}")


if __name__ == "__main__":
    main()
