#!/usr/bin/env python3
"""Compare the predictor family on the same traces.

Runs static predictors, bimodal, the two-level family (PAg/GAg/GAs,
gshare), a McFarling hybrid and the agree predictor over two contrasting
benchmark analogs — the pattern-heavy `compress` and the search-heavy
`chess` — plus the branch-allocated PAg for reference.

Run:  python examples/predictor_zoo.py [scale]
"""

import sys

from repro.allocation import BranchAllocator
from repro.eval import BenchmarkRunner
from repro.eval.report import render_table
from repro.predictors import (
    AgreePredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
    BimodalPredictor,
    GAgPredictor,
    GAsPredictor,
    GSharePredictor,
    HybridPredictor,
    InterferenceFreePAg,
    PAgPredictor,
    ProfileStaticPredictor,
    simulate_predictor,
)

BENCHMARKS = ("compress", "chess")


def predictor_lineup(profile, allocator):
    index_map = allocator.allocate(1024).index_map()
    return [
        ("always-taken", AlwaysTakenPredictor()),
        ("btfnt", BTFNTPredictor()),
        ("profile-static", ProfileStaticPredictor(profile)),
        ("bimodal-2k", BimodalPredictor(2048)),
        ("GAg-12", GAgPredictor(12)),
        ("GAs-8x16", GAsPredictor(history_bits=8, set_bits=4)),
        ("gshare-12", GSharePredictor(12)),
        ("hybrid", HybridPredictor(GSharePredictor(12),
                                   BimodalPredictor(4096))),
        ("agree-12", AgreePredictor(12, profile=profile)),
        ("PAg-1024 (conv)", PAgPredictor.conventional(1024, 12)),
        ("PAg-1024 (alloc)", PAgPredictor.allocated(index_map, 12)),
        ("PAg-infinite", InterferenceFreePAg(12)),
    ]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    threshold = 100 if scale >= 0.9 else 10
    runner = BenchmarkRunner(scale=scale)

    results = {}
    for name in BENCHMARKS:
        artifacts = runner.artifacts(name)
        allocator = BranchAllocator(artifacts.profile, threshold=threshold)
        for label, predictor in predictor_lineup(
            artifacts.profile, allocator
        ):
            stats = simulate_predictor(
                predictor, artifacts.trace, track_per_branch=False
            )
            results.setdefault(label, {})[name] = stats.misprediction_rate

    rows = [
        [label] + [f"{results[label][b]*100:.2f}%" for b in BENCHMARKS]
        for label in results
    ]
    print(render_table(
        ["predictor"] + list(BENCHMARKS),
        rows,
        title=f"Misprediction rates (scale={scale})",
    ))

    print("\nNotes:")
    print(" - local-history PAg thrives on the loop/pattern branches;")
    print(" - allocated PAg tracks the interference-free bound;")
    print(" - static predictors bound the no-hardware case.")


if __name__ == "__main__":
    main()
