#!/usr/bin/env python3
"""Branch allocation in detail (paper §5), step by step.

Profiles the `gcc` analog (the suite's most branch-rich program), builds
the conflict graph, colours it at several BHT sizes, shows how entry
sharing kicks in below the working-set size, and contrasts the plain
allocator with the classification-enhanced one — ending with the Table 3
and Table 4 sizing numbers for this benchmark.

Run:  python examples/allocation_walkthrough.py [scale]
"""

import sys

from repro.allocation import (
    BranchAllocator,
    ClassifiedBranchAllocator,
    conventional_cost,
    required_bht_size,
)
from repro.analysis import BiasClass, classify_profile
from repro.eval import BenchmarkRunner


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    threshold = 100 if scale >= 0.9 else 10
    runner = BenchmarkRunner(scale=scale)

    print("profiling the gcc analog ...")
    profile = runner.profile("gcc")
    print(f"  {profile.static_branch_count} static branches, "
          f"{profile.dynamic_branch_count} dynamic, "
          f"{len(profile.pairs)} interleaving pairs\n")

    # -- the conflict graph --------------------------------------------------
    allocator = BranchAllocator(profile, threshold=threshold)
    graph = allocator.graph
    print(f"conflict graph at threshold {threshold}: "
          f"{graph.node_count} nodes, {graph.edge_count} edges")
    baseline = conventional_cost(graph, 1024)
    print(f"conventional 1024-entry PC-indexed conflict cost: {baseline}\n")

    # -- colouring at decreasing sizes ----------------------------------------
    print(f"{'BHT size':>9} {'cost':>8} {'sharing branches':>17}")
    for size in (1024, 256, 64, 16, 4):
        result = allocator.allocate(size)
        print(f"{size:>9} {result.cost:>8} {len(result.shared_branches):>17}")
    print("(cost rises only once the table dips below the working sets)\n")

    # -- Table 3 sizing ----------------------------------------------------------
    sizing = required_bht_size(allocator, baseline)
    print(f"Table 3 number for gcc: {sizing.required_size} entries "
          f"(cost {sizing.achieved_cost} < baseline {baseline})")
    print(f"  search probes: {sorted(sizing.probes)}\n")

    # -- classification (§5.2) -----------------------------------------------------
    classes = classify_profile(profile)
    biased_taken = sum(
        1 for c in classes.values() if c is BiasClass.TAKEN_BIASED
    )
    biased_not = sum(
        1 for c in classes.values() if c is BiasClass.NOT_TAKEN_BIASED
    )
    print(f"classification: {biased_taken} branches >99% taken, "
          f"{biased_not} branches <1% taken, "
          f"{len(classes) - biased_taken - biased_not} mixed")

    classified = ClassifiedBranchAllocator(profile, threshold=threshold)
    print(f"filtered conflict graph: {classified.graph.edge_count} edges "
          f"(was {graph.edge_count})")
    sizing4 = required_bht_size(classified, baseline, min_size=3)
    print(f"Table 4 number for gcc: {sizing4.required_size} entries "
          f"(biased branches share 2 reserved entries)")

    reduction3 = 1 - sizing.required_size / 1024
    reduction4 = 1 - sizing4.required_size / 1024
    print(f"\nBHT size reduction vs 1024: "
          f"{reduction3:.0%} plain, {reduction4:.0%} with classification")


if __name__ == "__main__":
    main()
