#!/usr/bin/env python3
"""Regenerate every paper table and figure in one run.

This is the human-facing front end of the experiment registry; the
benchmark harness under benchmarks/ runs the same experiments under
pytest-benchmark timing.

Run:  python examples/paper_tables.py [--scale S] [--only table2,figure3]
                                      [--cache DIR] [--jobs N]

At scale 1.0 the full run simulates ~80M instructions across 15 analogs
and takes several minutes on first run (--jobs fans the simulations over
a process pool; traces are stored content-addressed if --cache is given,
so warm reruns skip simulation).
"""

import argparse
import sys
import time

from repro.eval import BenchmarkRunner
from repro.eval.experiments import EXPERIMENTS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(
        description="regenerate the paper's tables and figures"
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (default 1.0 = full analogs)")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated experiment ids "
                             f"(known: {', '.join(EXPERIMENTS)})")
    parser.add_argument("--cache", type=str, default="",
                        help="content-addressed artifact store directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation "
                             "(1 = sequential)")
    args = parser.parse_args()

    wanted = (
        [x.strip() for x in args.only.split(",") if x.strip()]
        if args.only
        else list(EXPERIMENTS)
    )
    unknown = [x for x in wanted if x not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    runner = BenchmarkRunner(
        scale=args.scale, cache_dir=args.cache or None, jobs=args.jobs
    )
    for experiment_id in wanted:
        experiment = EXPERIMENTS[experiment_id]
        started = time.time()
        print(f"\n================ {experiment.paper_artifact} "
              f"({experiment_id}) ================")
        print(experiment.description)
        print()
        sys.stdout.flush()
        print(run_experiment(experiment_id, runner))
        print(f"[{experiment_id} took {time.time() - started:.1f}s]")
        sys.stdout.flush()
    print()
    print(runner.stats.render())


if __name__ == "__main__":
    main()
