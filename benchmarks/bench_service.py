"""Analysis-service throughput under open-loop load.

Boots the ``repro serve`` daemon as a real subprocess and drives it with
the in-tree load generator through three phases:

* **cold** — every digest misses the artifact store, so the run measures
  the simulate-and-publish path (admission, worker pool, journal);
* **warm** — the identical job mix again: everything must be served from
  the store, measuring pure service overhead and the cache-hit ratio;
* **saturation** — a burst far beyond a deliberately tiny admission
  queue (one worker, ``--queue-limit 2``), measuring typed shedding
  under overload: the daemon must reject with ``service_overloaded``
  rather than queue without bound, and every *admitted* job must still
  complete.

Writes ``BENCH_service.json`` at the repo root with jobs/sec, p50/p99
latency, cache-hit ratio, and shed rate per phase.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.workloads import TABLE2_BENCHMARKS

REPO = Path(__file__).parent.parent
SCALE = float(os.environ.get("REPRO_BENCH_SERVICE_SCALE", "0.05"))
JOBS = int(os.environ.get("REPRO_BENCH_SERVICE_JOBS", "12"))
OUTPUT = REPO / "BENCH_service.json"
BENCHMARKS = ("plot", "compress")

PHASE_KEYS = (
    "jobs",
    "completed",
    "failed",
    "rejected",
    "rejected_overloaded",
    "dropped",
    "jobs_per_sec",
    "latency_p50_s",
    "latency_p99_s",
    "shed_rate",
    "cache_hit_ratio",
)


def _daemon_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    return env


def _ping(socket_path: str) -> bool:
    try:
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.settimeout(2.0)
        client.connect(socket_path)
        try:
            client.sendall(b'{"op": "ping"}\n')
            return b'"pong"' in client.makefile("rb").readline()
        finally:
            client.close()
    except OSError:
        return False


def _start_daemon(socket_path: str, cache_dir: Path, *flags: str):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path, "--cache", str(cache_dir), *flags,
        ],
        env=_daemon_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 60
    # readiness is protocol-level (a pong), not socket-file existence:
    # a recycled socket path may hold a stale file from a dead daemon
    while time.monotonic() < deadline:
        if _ping(socket_path):
            return proc
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon died on boot: {proc.stderr.read().decode()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never answered a ping")


def _stop_daemon(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 0, stderr.decode()


def _phase_row(name: str, report: dict) -> dict:
    row = {"phase": name}
    row.update({key: report[key] for key in PHASE_KEYS})
    return row


def test_service_throughput():
    root = Path(tempfile.mkdtemp(prefix="repro-bench-svc-", dir="/tmp"))
    cache = root / "cache"
    rows = []

    sock = str(root / "svc.sock")
    proc = _start_daemon(sock, cache, "--workers", "2")
    try:
        cold = run_loadgen(
            LoadgenConfig(
                socket_path=sock, rate=50.0, jobs=JOBS,
                benchmarks=BENCHMARKS, scale=SCALE,
            )
        )
        warm = run_loadgen(
            LoadgenConfig(
                socket_path=sock, rate=200.0, jobs=JOBS,
                benchmarks=BENCHMARKS, scale=SCALE,
            )
        )
    finally:
        _stop_daemon(proc)
    assert cold["completed"] == JOBS, cold
    assert cold["failed"] == 0, cold
    assert warm["completed"] == JOBS, warm
    assert warm["failed"] == 0, warm
    # the warm pass re-submits digests the cold pass published: all of
    # its jobs must be store/dedupe hits, never fresh simulations
    assert warm["service"]["jobs"]["simulated"] == len(BENCHMARKS), warm
    assert warm["cache_hit_ratio"] > cold["cache_hit_ratio"], (cold, warm)
    rows.append(_phase_row("cold", cold))
    rows.append(_phase_row("warm", warm))

    # saturation: one worker, a two-deep queue, and a burst of jobs with
    # *distinct* digests (the full table2 mix — same-digest submissions
    # would attach to the in-flight job instead of loading the queue)
    sat_sock = str(root / "sat.sock")
    sat_proc = _start_daemon(
        sat_sock, root / "sat-cache",
        "--workers", "1", "--queue-limit", "2",
    )
    try:
        saturation = run_loadgen(
            LoadgenConfig(
                socket_path=sat_sock, rate=400.0, jobs=JOBS,
                benchmarks=TABLE2_BENCHMARKS, scale=SCALE,
            )
        )
    finally:
        _stop_daemon(sat_proc)
    assert saturation["failed"] == 0, saturation
    assert saturation["completed"] >= 1, saturation
    assert saturation["rejected_overloaded"] > 0, saturation
    rows.append(_phase_row("saturation", saturation))

    OUTPUT.write_text(
        json.dumps(
            {
                "description": "analysis-service daemon under open-loop "
                "load: cold simulate path, warm store-hit path, and "
                "typed shedding at saturation (1 worker, queue depth 2)",
                "scale": SCALE,
                "jobs_per_phase": JOBS,
                "benchmarks": list(BENCHMARKS),
                "phases": rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
