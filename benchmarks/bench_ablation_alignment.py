"""Ablation — branch alignment (code motion, no ISA change) vs allocation.

The paper (§5): working set information "can be incorporated into a branch
alignment transformation for any ISA without change although it may not be
as effective as our scheme".  This bench quantifies both halves of that
sentence: alignment reduces the conventional table's conflicts, and true
allocation still does better.
"""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.ablations import (
    format_alignment_ablation,
    run_alignment_ablation,
)

BENCHMARKS = ("gcc", "tex", "m88ksim")


def test_ablation_alignment(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_alignment_ablation(
            runner, BENCHMARKS, threshold=THRESHOLD
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_alignment", format_alignment_ablation(rows))

    for row in rows:
        # alignment never increases the conflict cost ...
        assert row.aligned_cost <= row.original_cost, row
        # ... but true allocation is at least as effective (the paper's
        # "may not be as effective as our scheme")
        assert row.allocated_cost <= row.aligned_cost, row
        # and aligned layouts do not mispredict more on the same hardware
        assert row.aligned_mispredict <= row.original_mispredict + 0.002
