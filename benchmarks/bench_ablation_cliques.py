"""Ablation — working-set definition: disjoint partition vs overlapping
maximal cliques (the paper's §4.1 "many other definitions are possible").
"""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.ablations import (
    format_clique_definition,
    run_clique_definition_ablation,
)

BENCHMARKS = ("compress", "pgp", "plot", "chess", "tex", "gs")


def test_ablation_cliques(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_clique_definition_ablation(
            runner, BENCHMARKS, threshold=THRESHOLD
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_cliques", format_clique_definition(rows))

    for row in rows:
        if row.maximal_cliques < 0:
            continue  # enumeration capped; nothing to compare
        # overlapping cliques can only be at least as numerous/big as the
        # disjoint partition's sets
        assert row.maximal_cliques >= row.partition_sets
        assert row.maximal_avg >= row.partition_avg - 1e-9
        assert row.membership_per_branch >= 1.0
    # the shared-kernel benchmarks genuinely overlap
    by_name = {r.benchmark: r for r in rows}
    assert by_name["tex"].membership_per_branch > 1.0
