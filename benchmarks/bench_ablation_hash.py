"""Ablation — is profile-guided allocation better than a stronger hash?

The paper's conclusion proposes "better hashing algorithms by analyzing
and understanding execution characteristics"; this bench quantifies the
gap between a blind xor-fold hash and the profile-guided mapping.
"""

from conftest import prewarm, save_result
from repro.eval.ablations import format_hash_baseline, run_hash_baseline

BENCHMARKS = ("gcc", "python", "chess", "gs", "tex")


def test_ablation_hash(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_hash_baseline(runner, BENCHMARKS, bht_size=1024),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_hash", format_hash_baseline(rows))

    for row in rows:
        # the profiled allocator never loses at its own objective
        assert row.allocated_cost <= row.conventional_cost
        assert row.allocated_cost <= row.xorfold_cost
