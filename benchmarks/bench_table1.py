"""Table 1 — benchmarks, input sets, % of dynamic branches analyzed."""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.tables import format_table1, run_table1
from repro.workloads.suite import TABLE2_BENCHMARKS


def test_table1(benchmark, runner):
    prewarm(runner, TABLE2_BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_table1(runner), rounds=1, iterations=1
    )
    save_result("table1", format_table1(rows))

    assert len(rows) == len(TABLE2_BENCHMARKS)
    for row in rows:
        # the frequency cutoff keeps >=99% of dynamic branches, as in the
        # paper's Table 1 (worst case there: gcc at 93.74%)
        assert row.percent_analyzed >= 93.0, row
        assert 0 < row.analyzed_static <= row.static_branches
