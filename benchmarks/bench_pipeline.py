"""Streaming-pipeline throughput: fused one-pass vs materialize-then-replay.

Times the analysis stage both ways on three kernels and writes
``BENCH_pipeline.json`` at the repo root:

* **seed** (materialize-then-replay, the pre-pipeline shape) — finish the
  capture into a trace, round-trip it through the npz store, run the
  interleave analysis event by event, then replay the trace once per
  predictor through the scalar ``access`` loop;
* **pipeline** (fused) — one chunked pass over the same events with the
  interleave analyzer and the whole predictor bank riding the event bus
  together.

Both sides consume identical event streams and produce identical
statistics (asserted below); only the throughput differs.  The simulation
itself is excluded from both timings — it is common to both shapes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.pipeline.bus import BranchEventBus
from repro.pipeline.consumers import InterleaveConsumer, PredictorConsumer
from repro.predictors.gshare import GSharePredictor
from repro.predictors.simulator import simulate_predictor
from repro.predictors.twolevel import (
    GAgPredictor,
    GAsPredictor,
    InterferenceFreePAg,
    PAgPredictor,
)
from repro.profiling.interleave import InterleaveAnalyzer
from repro.trace.capture import TraceCapture
from repro.trace.io import load_trace, save_trace
from repro.workloads.build import build_workload, run_workload
from repro.workloads.suite import get_benchmark

KERNELS = ("compress", "pgp", "plot")
SCALE = float(os.environ.get("REPRO_BENCH_PIPELINE_SCALE", "0.3"))
OUTPUT = Path(__file__).parent.parent / "BENCH_pipeline.json"


def _bank():
    return [
        PAgPredictor.conventional(1024, 12),
        InterferenceFreePAg(12),
        GAgPredictor(12),
        GAsPredictor(),
        GSharePredictor(12),
    ]


def _seed_stage(trace, tmp_path):
    """The pre-pipeline analysis shape, timed end to end."""
    started = time.perf_counter()
    npz = tmp_path / f"{trace.name}.trace.npz"
    save_trace(trace, npz)
    reloaded = load_trace(npz)
    analyzer = InterleaveAnalyzer(name=trace.name)
    observe = analyzer.observe
    for pc, taken in zip(reloaded.pcs.tolist(), reloaded.taken.tolist()):
        observe(pc, taken)
    profile = analyzer.finish()
    results = {
        predictor.name: simulate_predictor(
            predictor, reloaded, track_per_branch=False, chunked=False
        )
        for predictor in _bank()
    }
    return time.perf_counter() - started, profile, results


def _pipeline_stage(trace):
    """One fused chunked pass: profiler + bank on the bus together."""
    started = time.perf_counter()
    profiler = InterleaveConsumer(label=trace.name)
    bank = [
        PredictorConsumer(p, label=trace.name, track_per_branch=False)
        for p in _bank()
    ]
    BranchEventBus.replay(trace, [profiler, *bank])
    results = {c.predictor.name: c.result for c in bank}
    return time.perf_counter() - started, profiler.result, results


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in KERNELS:
        built = build_workload(get_benchmark(name, scale=SCALE))
        capture = TraceCapture()
        run_workload(built, branch_hook=capture)
        out[name] = capture.finish(name)
    return out


def test_pipeline_throughput(traces, tmp_path):
    rows = []
    for name in KERNELS:
        trace = traces[name]
        seed_s, seed_profile, seed_stats = _seed_stage(trace, tmp_path)
        fused_s, fused_profile, fused_stats = _pipeline_stage(trace)
        # same events, same answers — speed is the only difference
        assert fused_profile.branches == seed_profile.branches
        assert fused_profile.pairs == seed_profile.pairs
        for pname, seed in seed_stats.items():
            fused = fused_stats[pname]
            assert (fused.branches, fused.mispredictions) == (
                seed.branches, seed.mispredictions
            ), pname
        events = len(trace)
        rows.append(
            {
                "kernel": name,
                "scale": SCALE,
                "events": events,
                "seed_seconds": round(seed_s, 4),
                "seed_events_per_second": round(events / seed_s, 1),
                "pipeline_seconds": round(fused_s, 4),
                "pipeline_events_per_second": round(events / fused_s, 1),
                "speedup": round(seed_s / fused_s, 2),
            }
        )
    OUTPUT.write_text(
        json.dumps(
            {
                "description": "analysis-stage events/sec: fused one-pass "
                "pipeline vs seed materialize-then-replay "
                "(profile + 5-predictor bank)",
                "kernels": rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    at_least_2x = [r for r in rows if r["speedup"] >= 2.0]
    assert len(at_least_2x) >= 2, rows
