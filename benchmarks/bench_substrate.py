"""Micro-benchmarks of the substrate's hot paths.

These time the components every experiment leans on: the functional
simulator's dispatch loop, the recency-stack interleave analysis, the
greedy clique cover, the colouring allocator, and the PAg trace simulator.
Unlike the table/figure benches these use multiple rounds — they are cheap
and their timing is the point.
"""

import pytest

from repro.allocation.coloring import color_graph
from repro.analysis.conflict_graph import build_conflict_graph
from repro.analysis.working_sets import partition_working_sets
from repro.asm.assembler import assemble
from repro.predictors.simulator import simulate_predictor
from repro.predictors.twolevel import PAgPredictor
from repro.profiling.interleave import profile_trace
from repro.sim.machine import Simulator
from repro.trace.synthetic import make_phased_workload

_LOOP = """
main:
    li t0, 0
    li t2, 100000
loop:
    addi t0, t0, 1
    andi t1, t0, 7
    bnez t1, skip
    addi t3, t3, 1
skip:
    blt t0, t2, loop
    halt
"""


@pytest.fixture(scope="module")
def synthetic_trace():
    workload = make_phased_workload(
        n_phases=10, branches_per_phase=20, iterations=100, seed=5,
        text_span=1 << 20,
    )
    return workload.generate(seed=6)


@pytest.fixture(scope="module")
def synthetic_profile(synthetic_trace):
    return profile_trace(synthetic_trace)


def test_simulator_throughput(benchmark):
    program = assemble(_LOOP)

    def run():
        simulator = Simulator(program)
        return simulator.run(max_instructions=600_000,
                             allow_truncation=False)

    result = benchmark(run)
    assert result.halted


def test_interleave_analysis_throughput(benchmark, synthetic_trace):
    profile = benchmark(lambda: profile_trace(synthetic_trace))
    assert profile.static_branch_count == 200


def test_clique_cover_throughput(benchmark, synthetic_profile):
    graph = build_conflict_graph(synthetic_profile, threshold=50)

    partition = benchmark(lambda: partition_working_sets(graph))
    assert partition.count == 10


def test_coloring_throughput(benchmark, synthetic_profile):
    graph = build_conflict_graph(synthetic_profile, threshold=50)

    result = benchmark(lambda: color_graph(graph, colors=64))
    assert result.cost == 0


def test_pag_simulation_throughput(benchmark, synthetic_trace):
    def run():
        predictor = PAgPredictor.conventional(1024, 12)
        return simulate_predictor(
            predictor, synthetic_trace, track_per_branch=False
        )

    stats = benchmark(run)
    assert stats.branches == len(synthetic_trace)
