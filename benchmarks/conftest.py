"""Benchmark-harness fixtures.

The harness regenerates every paper table and figure at full analog scale
(override with ``REPRO_BENCH_SCALE``).  Simulation traces and interleave
profiles are cached under ``benchmarks/.cache`` so pytest-benchmark timing
measures the *analysis* being reproduced, not repeated trace generation;
rendered tables are written to ``benchmarks/results/`` for inspection and
for the EXPERIMENTS.md record.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.runner import BenchmarkRunner

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".cache"
RESULTS_DIR = BENCH_DIR / "results"

#: Full-scale analogs by default; the paper's threshold of 100 applies at
#: this scale.  Smaller scales are for smoke-testing the harness itself.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
THRESHOLD = 100 if SCALE >= 0.9 else 10

#: Worker processes for cold-cache trace generation (1 = sequential).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    """Session-wide runner with a persistent trace/profile cache."""
    return BenchmarkRunner(scale=SCALE, cache_dir=CACHE_DIR, jobs=JOBS)


def save_result(name: str, text: str) -> None:
    """Persist a rendered experiment table for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def prewarm(runner: BenchmarkRunner, names) -> None:
    """Simulate + profile outside the timed region (fans out when JOBS>1)."""
    runner.prefetch(names)
