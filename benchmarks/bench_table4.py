"""Table 4 — BHT size required with branch classification."""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.tables import (
    format_sizing_table,
    reduction_summary,
    run_table3,
    run_table4,
)
from repro.workloads.suite import TABLE34_BENCHMARKS


def test_table4(benchmark, runner):
    prewarm(runner, TABLE34_BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_table4(runner, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    save_result(
        "table4",
        format_sizing_table(rows, "Table 4", "with branch classification"),
    )

    table3 = run_table3(runner, threshold=THRESHOLD)
    by_name3 = {r.benchmark: r for r in table3}
    smaller = 0
    for row in rows:
        assert row.required_size < 1024
        if row.required_size <= by_name3[row.benchmark].required_size:
            smaller += 1
    # classification shrinks (or preserves) the requirement almost
    # everywhere — in the paper it shrinks every single benchmark
    assert smaller >= len(rows) - 2

    r3, r4 = reduction_summary(table3, rows)
    save_result(
        "reduction_summary",
        f"mean BHT size reduction vs 1024 entries:\n"
        f"  plain allocation       : {r3:.1%}  (paper: 60-80%)\n"
        f"  with classification    : {r4:.1%}  (paper: up to 97%)",
    )
    assert r4 >= r3 - 1e-9
