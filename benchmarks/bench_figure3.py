"""Figure 3 — PAg misprediction with branch allocation, no classification.

Bars per benchmark: allocated BHT at 16/128/1024 entries vs the
conventional 1024-entry PAg and the interference-free configuration.
"""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.figures import (
    average_improvement,
    format_figure,
    run_figure3,
)
from repro.workloads.suite import FIGURE_BENCHMARKS


def test_figure3(benchmark, runner):
    prewarm(runner, FIGURE_BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_figure3(runner, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    save_result(
        "figure3",
        format_figure(rows, "Figure 3", "allocation without classification")
        + f"\n\naverage relative improvement @1024: "
        f"{average_improvement(rows):+.1%} (paper: ~16%)",
    )

    assert len(rows) == len(FIGURE_BENCHMARKS)
    for row in rows:
        # allocated 1024-entry tracks the interference-free bound ...
        assert row.allocated[1024] <= row.interference_free + 0.005, row
        # ... and never loses to the conventional baseline
        assert row.allocated[1024] <= row.conventional + 0.002, row
    # the paper's headline: on average, allocation at equal size wins
    assert average_improvement(rows) >= 0.0
