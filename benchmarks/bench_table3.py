"""Table 3 — BHT size required for branch allocation (no classification)."""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.tables import format_sizing_table, run_table3
from repro.workloads.suite import TABLE34_BENCHMARKS


def test_table3(benchmark, runner):
    prewarm(runner, TABLE34_BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_table3(runner, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    save_result(
        "table3",
        format_sizing_table(rows, "Table 3", "(working sets only)"),
    )

    assert len(rows) == len(TABLE34_BENCHMARKS)
    for row in rows:
        # the paper's claim: allocation beats the conventional 1024-entry
        # BHT with a fraction of the entries (60-80% reduction there)
        assert row.required_size < 1024, row
        if row.baseline_cost > 0:
            assert row.achieved_cost < row.baseline_cost, row
