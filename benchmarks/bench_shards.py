"""Distributed sharding wall-clock benchmark (``make bench-shards``).

Measures the tentpole claim of the shard subsystem: splitting one suite
selection across two engine *processes* against a **shared**
content-addressed store finishes faster than one process running the
whole selection, and produces byte-identical artifacts.

Three timed phases over the ``unix`` benchmark set:

* **unsharded** — one ``repro experiment --set unix`` process, cold
  store (the baseline a single host pays);
* **sharded** — two concurrent processes, ``--shard 1/2`` and
  ``--shard 2/2``, sharing one cold store (the two-host deployment,
  co-located);
* **merge** — ``repro merge-shards`` over the shared store, i.e. the
  completion census the distributed run ends with.

Writes ``BENCH_shards.json`` at the repo root with both wall-clock
times, the speedup, and the byte-identity verdict.  Scale with
``REPRO_BENCH_SHARDS_SCALE`` (default 0.05 — this benchmark measures
orchestration overhead and parallelism, not simulation throughput).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).parent.parent
OUTPUT = REPO / "BENCH_shards.json"
SCALE = os.environ.get("REPRO_BENCH_SHARDS_SCALE", "0.05")
SELECTOR = os.environ.get("REPRO_BENCH_SHARDS_SET", "unix")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _repro(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _experiment(cache: Path, *extra: str) -> subprocess.Popen:
    return _repro(
        "experiment",
        "--set",
        SELECTOR,
        "--scale",
        SCALE,
        "--cache",
        str(cache),
        *extra,
    )


def _artifact_bytes(root: Path) -> dict:
    return {
        p.name: p.read_bytes()
        for p in sorted(root.iterdir())
        if p.is_file() and p.name != "journal.jsonl"
    }


def test_sharded_run_is_parallel_and_byte_identical():
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-shards-"))
    try:
        base, shared = workdir / "base", workdir / "shared"

        started = time.perf_counter()
        proc = _experiment(base)
        assert proc.wait() == 0
        unsharded_s = time.perf_counter() - started

        started = time.perf_counter()
        workers = [
            _experiment(shared, "--shard", "1/2"),
            _experiment(shared, "--shard", "2/2"),
        ]
        assert [w.wait() for w in workers] == [0, 0]
        sharded_s = time.perf_counter() - started

        started = time.perf_counter()
        merge = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "merge-shards",
                str(shared),
                "--into",
                str(shared),
                "--json",
            ],
            env=_env(),
            capture_output=True,
            text=True,
        )
        merge_s = time.perf_counter() - started
        assert merge.returncode == 0, merge.stderr
        census = json.loads(merge.stdout)["results"]

        identical = _artifact_bytes(shared) == _artifact_bytes(base)
        assert identical, "sharded store diverged from unsharded run"

        report = {
            "selector": SELECTOR,
            "scale": float(SCALE),
            "benchmarks": census["benchmarks"],
            "unsharded_s": round(unsharded_s, 3),
            "sharded_2x_s": round(sharded_s, 3),
            "merge_s": round(merge_s, 3),
            "speedup": round(unsharded_s / sharded_s, 3),
            "byte_identical": identical,
            "note": "two engine processes, one shared store; merge is "
            "a census pass (shared-store deployment copies nothing)",
        }
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        assert census["benchmarks"], "no benchmark completed"
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
