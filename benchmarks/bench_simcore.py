"""Simulation-core throughput: superblock-compiled traces vs interpreter.

Runs a set of suite kernels under both simulation backends with the full
fused event pipeline attached (profiler + chunked trace builder on the
bus — the exact shape engine jobs use) and writes ``BENCH_simcore.json``
at the repo root with events/sec and instructions/sec per kernel.

Both backends must produce byte-identical event streams (asserted on the
trace columns); only the throughput differs.  Timings are best-of-N of
the steady state: the superblock side is warmed once first so one-time
trace emission and lazy code materialization are excluded, exactly as an
experiment sweep amortizes them across runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.pipeline.bus import BranchEventBus
from repro.pipeline.consumers import InterleaveConsumer, TraceBuilder
from repro.sim.machine import Simulator
from repro.workloads.build import build_workload
from repro.workloads.suite import get_benchmark

KERNELS = ("plot", "pgp", "compress", "gcc", "li", "ijpeg", "m88ksim")
SCALE = float(os.environ.get("REPRO_BENCH_SIMCORE_SCALE", "0.1"))
REPEATS = int(os.environ.get("REPRO_BENCH_SIMCORE_REPEATS", "3"))
FUEL = 50_000_000
OUTPUT = Path(__file__).parent.parent / "BENCH_simcore.json"


def _run(built, backend):
    profiler = InterleaveConsumer(label="bench")
    builder = TraceBuilder(label="bench")
    bus = BranchEventBus([profiler, builder])
    sim = Simulator(
        built.program,
        input_data=built.input_data,
        branch_hook=bus,
        random_seed=built.spec.random_seed,
        backend=backend,
    )
    started = time.perf_counter()
    result = sim.run(max_instructions=FUEL)
    elapsed = time.perf_counter() - started
    bus.finish()
    trace = builder.result
    columns = (
        trace.pcs.tobytes(),
        trace.targets.tobytes(),
        trace.taken.tobytes(),
        trace.timestamps.tobytes(),
    )
    return elapsed, result, columns


def _best(built, backend):
    times = []
    result = columns = None
    for _ in range(REPEATS):
        elapsed, result, columns = _run(built, backend)
        times.append(elapsed)
    return min(times), result, columns


def test_simcore_throughput():
    rows = []
    for name in KERNELS:
        built = build_workload(get_benchmark(name, scale=SCALE))
        _run(built, "superblock")  # warm: emit traces, materialize code
        interp_s, interp_result, interp_columns = _best(built, "interp")
        super_s, super_result, super_columns = _best(built, "superblock")
        assert super_columns == interp_columns, name
        assert super_result == interp_result, name
        events = interp_result.conditional_branches
        instructions = interp_result.instructions
        rows.append(
            {
                "kernel": name,
                "scale": SCALE,
                "instructions": instructions,
                "events": events,
                "interp_seconds": round(interp_s, 4),
                "interp_events_per_second": round(events / interp_s, 1),
                "interp_instructions_per_second": round(
                    instructions / interp_s, 1
                ),
                "superblock_seconds": round(super_s, 4),
                "superblock_events_per_second": round(events / super_s, 1),
                "superblock_instructions_per_second": round(
                    instructions / super_s, 1
                ),
                "speedup": round(interp_s / super_s, 2),
            }
        )
    OUTPUT.write_text(
        json.dumps(
            {
                "description": "simulation events/sec: superblock-compiled "
                "backend vs interpreter, full fused pipeline attached "
                "(byte-identical artifacts asserted)",
                "kernels": rows,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    at_least_5x = [r for r in rows if r["speedup"] >= 5.0]
    assert len(at_least_5x) >= 3, rows
