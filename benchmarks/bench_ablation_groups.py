"""Ablation — group-level allocation (the paper's §6 extension).

Compares per-branch allocation against bias-class and history-pattern
groupings at a 128-entry BHT: good groupings shrink the colouring problem
while keeping prediction accuracy close to per-branch allocation.
"""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.group_allocation import (
    format_group_ablation,
    run_group_ablation,
)

BENCHMARKS = ("compress", "gcc", "tex", "perl_a")


def test_ablation_groups(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_group_ablation(
            runner, BENCHMARKS, bht_size=128, threshold=THRESHOLD
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_groups", format_group_ablation(rows))

    for row in rows:
        profile = runner.profile(row.benchmark)
        statics = profile.static_branch_count
        # grouping genuinely shrinks the allocation problem
        assert row.bias_groups <= statics
        assert row.pattern_groups <= statics
        # and costs little accuracy relative to per-branch allocation
        assert row.bias_mispredict <= row.branch_mispredict + 0.02
        assert row.pattern_mispredict <= row.branch_mispredict + 0.02
