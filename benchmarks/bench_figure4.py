"""Figure 4 — PAg misprediction with allocation + branch classification."""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.figures import (
    average_improvement,
    format_figure,
    run_figure3,
    run_figure4,
)
from repro.workloads.suite import FIGURE_BENCHMARKS


def test_figure4(benchmark, runner):
    prewarm(runner, FIGURE_BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_figure4(runner, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    save_result(
        "figure4",
        format_figure(rows, "Figure 4", "allocation with classification")
        + f"\n\naverage relative improvement @1024: "
        f"{average_improvement(rows):+.1%}",
    )

    assert len(rows) == len(FIGURE_BENCHMARKS)
    wins_at_128 = 0
    for row in rows:
        assert row.allocated[1024] <= row.conventional + 0.002, row
        # a 0.1pp tolerance absorbs benchmarks where the two configurations
        # tie to within noise (pgp/python here; the paper's one exception
        # was gcc)
        if row.allocated[128] <= row.conventional + 0.001:
            wins_at_128 += 1
    # the paper: classified allocation at 128 entries beats (or matches)
    # the conventional 1024-entry PAg on every benchmark except one
    assert wins_at_128 >= len(rows) - 2
