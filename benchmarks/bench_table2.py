"""Table 2 — the sizes of branch working sets."""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.tables import format_table2, run_table2
from repro.workloads.suite import TABLE2_BENCHMARKS


def test_table2(benchmark, runner):
    prewarm(runner, TABLE2_BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_table2(runner, threshold=THRESHOLD),
        rounds=1,
        iterations=1,
    )
    save_result("table2", format_table2(rows))

    assert len(rows) == len(TABLE2_BENCHMARKS)
    by_name = {r.benchmark: r for r in rows}
    for row in rows:
        assert row.total_sets >= 1
        # the paper's core observation: each working set holds only a
        # small fraction of the program's static branches
        assert row.average_static_size <= row.static_branches
        assert row.average_dynamic_size <= row.static_branches
    # gcc has the largest static population in both the paper and here
    assert by_name["gcc"].static_branches == max(
        r.static_branches for r in rows
    )
