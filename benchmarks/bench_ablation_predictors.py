"""Ablation — the 2-level predictor family on the same traces."""

from conftest import prewarm, save_result
from repro.eval.ablations import (
    format_predictor_family,
    run_predictor_family,
)

BENCHMARKS = ("compress", "gcc", "li", "chess")


def test_ablation_predictors(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    results = benchmark.pedantic(
        lambda: run_predictor_family(runner, BENCHMARKS),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_predictors", format_predictor_family(results))

    for name in BENCHMARKS:
        rates = results[name]
        assert set(rates) == {
            "PAg", "GAg", "gshare", "bimodal", "hybrid", "agree",
            "bias-filtered"
        }
        # every dynamic predictor stays below coin-flipping
        assert all(rate < 0.5 for rate in rates.values()), rates
        # the hybrid never does much worse than its better component
        best_component = min(rates["gshare"], rates["bimodal"])
        assert rates["hybrid"] <= best_component + 0.02
