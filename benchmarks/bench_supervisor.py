"""Crash-safe supervisor recovery benchmark (``make bench-supervisor``).

Measures the tentpole claim of the shard supervisor: a worker SIGKILLed
mid-benchmark costs bounded wall-clock — the supervisor detects the
death, restarts the slot, the journal diff scopes the rerun — and the
recovered store is still byte-identical to an unsharded run.

Three timed phases over the ``smoke`` benchmark set:

* **unsharded** — one ``repro experiment --set smoke`` process, cold
  store (the correctness baseline);
* **supervised** — ``repro supervise --workers 2`` over a cold shared
  store, no faults (the orchestration-overhead case);
* **recovered** — the same supervised run with
  ``REPRO_FAULTS=shard_kill:1@4000`` injected: worker 1 dies hard
  mid-benchmark and the run must still finish (the recovery-cost case).

Writes ``BENCH_supervisor.json`` at the repo root with all three
wall-clock times, the recovery overhead ratio, and both byte-identity
verdicts.  Scale with ``REPRO_BENCH_SUPERVISOR_SCALE`` (default 0.05 —
this benchmark measures supervision and recovery overhead, not
simulation throughput).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).parent.parent
OUTPUT = REPO / "BENCH_supervisor.json"
SCALE = os.environ.get("REPRO_BENCH_SUPERVISOR_SCALE", "0.05")
SELECTOR = os.environ.get("REPRO_BENCH_SUPERVISOR_SET", "smoke")
KILL_AT = os.environ.get("REPRO_BENCH_SUPERVISOR_KILL", "shard_kill:1@4000")


def _env(faults: str = "") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def _run(*argv: str, faults: str = "") -> float:
    """Run one ``repro`` subcommand to completion, return its seconds."""
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=_env(faults),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )
    elapsed = time.perf_counter() - started
    assert proc.returncode == 0, f"repro {argv[0]} exited {proc.returncode}"
    return elapsed


def _supervise(cache: Path, faults: str = "") -> float:
    return _run(
        "supervise",
        "--set", SELECTOR,
        "--scale", SCALE,
        "--workers", "2",
        "--cache", str(cache),
        faults="" if not faults else faults,
    )


def _artifact_bytes(root: Path) -> dict:
    return {
        p.name: p.read_bytes()
        for p in sorted(root.iterdir())
        if p.is_file() and p.name != "journal.jsonl"
    }


def test_supervised_recovery_is_bounded_and_byte_identical():
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-supervisor-"))
    try:
        base = workdir / "base"
        clean = workdir / "clean"
        faulted = workdir / "faulted"

        unsharded_s = _run(
            "experiment", "--set", SELECTOR,
            "--scale", SCALE, "--cache", str(base),
        )
        supervised_s = _supervise(clean)
        recovered_s = _supervise(faulted, faults=KILL_AT)

        baseline = _artifact_bytes(base)
        clean_identical = _artifact_bytes(clean) == baseline
        recovered_identical = _artifact_bytes(faulted) == baseline
        assert clean_identical, "supervised store diverged from baseline"
        assert recovered_identical, "recovered store diverged from baseline"

        report = {
            "selector": SELECTOR,
            "scale": float(SCALE),
            "fault": KILL_AT,
            "unsharded_s": round(unsharded_s, 3),
            "supervised_2x_s": round(supervised_s, 3),
            "recovered_2x_s": round(recovered_s, 3),
            "recovery_overhead": round(recovered_s / supervised_s, 3),
            "byte_identical_clean": clean_identical,
            "byte_identical_recovered": recovered_identical,
            "note": "recovery overhead = killed-worker run vs clean "
            "supervised run; checkpoints + journal diff bound the replay",
        }
        OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
