"""Ablation — PAg local-history length sweep.

The paper fixes the PHT at 4096 entries (12-bit histories); this sweep
checks that allocation's advantage over conventional indexing is not an
artifact of that geometry.
"""

from conftest import THRESHOLD, prewarm, save_result
from repro.eval.ablations import format_history_sweep, run_history_sweep

BENCHMARKS = ("gcc", "tex")
BITS = (4, 6, 8, 10, 12)


def test_ablation_history(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    rows = benchmark.pedantic(
        lambda: run_history_sweep(
            runner, BENCHMARKS, history_bits=BITS, threshold=THRESHOLD
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_history", format_history_sweep(rows))

    for name in BENCHMARKS:
        series = [r for r in rows if r.benchmark == name]
        assert [r.history_bits for r in series] == list(BITS)
        for row in series:
            # allocation never loses to conventional at any history length
            assert row.allocated <= row.conventional + 0.002, row
            # and tracks the interference-free bound
            assert row.allocated <= row.interference_free + 0.005, row
        # longer local histories help these pattern-heavy workloads
        assert series[-1].allocated <= series[0].allocated
