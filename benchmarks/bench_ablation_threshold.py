"""Ablation — conflict-edge threshold sensitivity (paper §4.2).

The paper: "Other threshold values such as 500 or 1000 show no significant
difference on the results."  At full scale we sweep 50/100/500/1000 over
three representative benchmarks.
"""

from conftest import SCALE, prewarm, save_result
from repro.eval.ablations import (
    format_threshold_ablation,
    run_threshold_ablation,
)

BENCHMARKS = ("compress", "gcc", "python")


def _thresholds():
    if SCALE >= 0.9:
        return (50, 100, 500, 1000)
    return (5, 10, 25, 50)


def test_ablation_threshold(benchmark, runner):
    prewarm(runner, BENCHMARKS)
    thresholds = _thresholds()
    rows = benchmark.pedantic(
        lambda: run_threshold_ablation(
            runner, BENCHMARKS, thresholds=thresholds
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_threshold", format_threshold_ablation(rows))

    assert len(rows) == len(BENCHMARKS) * len(thresholds)
    # within each benchmark: pruning more edges can only break sets apart
    for name in BENCHMARKS:
        series = [r for r in rows if r.benchmark == name]
        counts = [r.total_sets for r in series]
        assert counts == sorted(counts)
