"""Ablation — profile input sensitivity + cumulative profiles (§5.2)."""

from conftest import prewarm, save_result
from repro.eval.ablations import (
    format_input_sensitivity,
    run_input_sensitivity,
)


def test_ablation_inputs(benchmark, runner):
    prewarm(runner, ["perl_a", "perl_b", "ss_a", "ss_b"])
    rows = benchmark.pedantic(
        lambda: run_input_sensitivity(runner, pairs=("perl", "ss")),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_inputs", format_input_sensitivity(rows))

    assert {r.benchmark for r in rows} == {"perl", "ss"}
    for row in rows:
        assert row.size_a >= 1 and row.size_b >= 1
        # the cumulative profile's requirement is in the same regime as
        # the single-input ones (the paper: "will not necessarily lead to
        # significantly larger table requirements")
        assert row.size_merged <= 4 * max(row.size_a, row.size_b)
