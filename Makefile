# Convenience targets; everything runs with the in-tree sources.
PY ?= python
export PYTHONPATH := src

SMOKE_CACHE := .smoke-cache
SMOKE_ARGS  := experiment table2 --scale 0.05 --jobs 2 --cache $(SMOKE_CACHE)

.PHONY: test lint faults smoke bench bench-simcore bench-service \
	bench-shards bench-supervisor clean

test:
	$(PY) -m pytest -x -q tests

## Static gate: every benchmark analog must lint clean under --strict
## (warnings fail too).  The ruff error-class pass (config in
## pyproject.toml) runs only when ruff is installed; CI always has it.
lint:
	$(PY) -m repro lint --all --strict
	@if $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping style checks"; \
	fi

## Only the fault-injection and recovery tests (crashed/hung/flaky
## workers, corrupted cache entries, degraded experiments).
faults:
	$(PY) -m pytest -x -q -m faults tests

## End-to-end sanity check for the evaluation engine: a cold run that
## simulates and populates the content-addressed store, a warm run that
## must be served from it, then a corruption pass — one cache entry is
## damaged in place and the rerun must quarantine + resimulate it.
smoke:
	rm -rf $(SMOKE_CACHE)
	@echo "== cold: simulating into $(SMOKE_CACHE) =="
	$(PY) -m repro $(SMOKE_ARGS)
	@echo "== warm: store hits only =="
	$(PY) -m repro $(SMOKE_ARGS)
	@echo "== corrupt: damaging one stored trace =="
	$(PY) -c "import pathlib; from repro.eval.faults import corrupt_file; \
	victim = sorted(pathlib.Path('$(SMOKE_CACHE)').glob('*.trace.npz'))[0]; \
	corrupt_file(victim); print(f'corrupted {victim}')"
	@echo "== recover: quarantine + resimulate the damaged entry =="
	$(PY) -m repro $(SMOKE_ARGS)
	rm -rf $(SMOKE_CACHE)

bench:
	$(PY) -m pytest benchmarks -q

## Simulation-core throughput: superblock backend vs interpreter,
## byte-identity asserted; writes BENCH_simcore.json at the repo root.
bench-simcore:
	$(PY) -m pytest benchmarks/bench_simcore.py -q

## Analysis-service throughput: boots the `repro serve` daemon and
## drives it with the open-loop load generator (cold simulate path,
## warm store-hit path, typed shedding at saturation); writes
## BENCH_service.json at the repo root.
bench-service:
	$(PY) -m pytest benchmarks/bench_service.py -q

## Distributed sharding: one unsharded suite run vs two concurrent
## --shard K/2 engine processes against a shared store, byte-identity
## asserted; writes BENCH_shards.json at the repo root.
bench-shards:
	$(PY) -m pytest benchmarks/bench_shards.py -q

## Crash-safe supervision: unsharded baseline vs a clean supervised
## 2-worker run vs a supervised run with a SIGKILLed worker
## (REPRO_FAULTS=shard_kill); recovery overhead measured, byte-identity
## asserted; writes BENCH_supervisor.json at the repo root.
bench-supervisor:
	$(PY) -m pytest benchmarks/bench_supervisor.py -q

clean:
	rm -rf $(SMOKE_CACHE) .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
