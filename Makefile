# Convenience targets; everything runs with the in-tree sources.
PY ?= python
export PYTHONPATH := src

SMOKE_CACHE := .smoke-cache
SMOKE_ARGS  := experiment table2 --scale 0.05 --jobs 2 --cache $(SMOKE_CACHE)

.PHONY: test smoke bench clean

test:
	$(PY) -m pytest -x -q tests

## End-to-end sanity check for the evaluation engine: a cold run that
## simulates and populates the content-addressed store, then a warm run
## that must be served from it.
smoke:
	rm -rf $(SMOKE_CACHE)
	@echo "== cold: simulating into $(SMOKE_CACHE) =="
	$(PY) -m repro $(SMOKE_ARGS)
	@echo "== warm: store hits only =="
	$(PY) -m repro $(SMOKE_ARGS)
	rm -rf $(SMOKE_CACHE)

bench:
	$(PY) -m pytest benchmarks -q

clean:
	rm -rf $(SMOKE_CACHE) .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
